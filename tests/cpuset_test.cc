/**
 * @file
 * CpuSet: the wide shoot-set / in-use-set representation.
 *
 * The original Multimax stopped at 16 processors; the NUMA topology
 * layer composes machines past that, so every set of CPUs in the tree
 * must behave identically at 17, 64, and 128 members -- the shapes
 * that cross the old 16-bit mask, fill one 64-bit word, and span
 * multiple words.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/cpuset.hh"

namespace
{

using mach::CpuId;
using mach::CpuSet;

std::vector<CpuId>
members(const CpuSet &set)
{
    std::vector<CpuId> out;
    set.forEach([&](CpuId id) { out.push_back(id); });
    return out;
}

TEST(CpuSet, StartsEmpty)
{
    CpuSet set;
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.count(), 0u);
    EXPECT_EQ(set.first(), CpuSet::kMaxCpus);
    EXPECT_EQ(set.format(), "{}");
}

TEST(CpuSet, SetClearTestAssign)
{
    CpuSet set;
    set.set(0);
    set.set(16); // First id beyond the paper's 16-bit mask.
    set.set(63);
    set.set(64); // First id in the second word.
    set.set(127);
    EXPECT_TRUE(set.test(0));
    EXPECT_TRUE(set.test(16));
    EXPECT_TRUE(set.test(63));
    EXPECT_TRUE(set.test(64));
    EXPECT_TRUE(set.test(127));
    EXPECT_FALSE(set.test(1));
    EXPECT_FALSE(set.test(65));
    EXPECT_EQ(set.count(), 5u);

    set.clear(64);
    EXPECT_FALSE(set.test(64));
    EXPECT_EQ(set.count(), 4u);

    set.assign(64, true);
    EXPECT_TRUE(set.test(64));
    set.assign(64, false);
    EXPECT_FALSE(set.test(64));

    set.clearAll();
    EXPECT_TRUE(set.empty());
}

TEST(CpuSet, FullMachineShapes)
{
    for (unsigned ncpus : {17u, 64u, 128u}) {
        CpuSet set;
        for (CpuId id = 0; id < ncpus; ++id)
            set.set(id);
        EXPECT_EQ(set.count(), ncpus) << "ncpus=" << ncpus;
        EXPECT_EQ(set.first(), 0u);
        for (CpuId id = 0; id < ncpus; ++id)
            EXPECT_TRUE(set.test(id)) << "ncpus=" << ncpus
                                      << " id=" << id;
        EXPECT_FALSE(set.test(ncpus));

        // Iteration order is ascending id -- the order the shootdown
        // protocol's send loops (and the determinism digests) rely on.
        const std::vector<CpuId> got = members(set);
        ASSERT_EQ(got.size(), ncpus);
        for (CpuId id = 0; id < ncpus; ++id)
            EXPECT_EQ(got[id], id);
    }
}

TEST(CpuSet, SetOperations)
{
    CpuSet a, b;
    for (CpuId id = 0; id < 128; id += 2)
        a.set(id); // evens
    for (CpuId id = 0; id < 128; id += 3)
        b.set(id); // multiples of 3

    CpuSet uni = a;
    uni |= b;
    CpuSet inter = a;
    inter &= b;

    for (CpuId id = 0; id < 128; ++id) {
        EXPECT_EQ(uni.test(id), id % 2 == 0 || id % 3 == 0);
        EXPECT_EQ(inter.test(id), id % 6 == 0);
    }

    CpuSet copy = a;
    EXPECT_TRUE(copy == a);
    copy.clear(0);
    EXPECT_FALSE(copy == a);
}

TEST(CpuSet, FirstSkipsLeadingWords)
{
    CpuSet set;
    set.set(100);
    set.set(900);
    EXPECT_EQ(set.first(), 100u);
    set.clear(100);
    EXPECT_EQ(set.first(), 900u);
}

TEST(CpuSet, FormatCollapsesRuns)
{
    CpuSet set;
    for (CpuId id = 0; id <= 3; ++id)
        set.set(id);
    set.set(8);
    for (CpuId id = 12; id <= 15; ++id)
        set.set(id);
    EXPECT_EQ(set.format(), "{0-3,8,12-15}");

    // A run of exactly two prints as a pair, not a dash range.
    CpuSet pair;
    pair.set(5);
    pair.set(6);
    EXPECT_EQ(pair.format(), "{5,6}");

    // Wide-machine ids format past the old 16-CPU ceiling.
    CpuSet wide;
    for (CpuId id = 16; id < 128; ++id)
        wide.set(id);
    EXPECT_EQ(wide.format(), "{16-127}");
}

TEST(CpuSet, BoundaryIds)
{
    CpuSet set;
    set.set(CpuSet::kMaxCpus - 1);
    EXPECT_TRUE(set.test(CpuSet::kMaxCpus - 1));
    EXPECT_EQ(set.count(), 1u);
    EXPECT_EQ(set.first(), CpuSet::kMaxCpus - 1);
    EXPECT_EQ(members(set).back(), CpuSet::kMaxCpus - 1);
}

} // namespace
