#include "apps/camelot.hh"

#include <vector>

#include "base/logging.hh"

namespace mach::apps
{

void
Camelot::run(vm::Kernel &kernel, kern::Thread &driver)
{
    vm::Task *task = kernel.createTask("camelot");
    unsigned remaining = params_.transactions;

    kern::Thread *coordinator = kernel.spawnThread(
        task, "camelot-tran-manager", [&](kern::Thread &self) {
            // Build the recoverable database region once.
            VAddr db = 0;
            bool ok = kernel.vmAllocate(self, *task, &db,
                                        params_.db_pages * kPageSize,
                                        true);
            MACH_ASSERT(ok);
            for (unsigned p = 0; p < params_.db_pages; ++p) {
                ok = self.store32(db + p * kPageSize, 0xdb000000 + p);
                MACH_ASSERT(ok);
            }

            unsigned next_server = 0;
            auto server_body = [&, db](kern::Thread &server) {
                Rng rng(params_.seed + 7919 * ++next_server);
                (void)server;
                for (;;) {
                    if (remaining == 0)
                        break;
                    --remaining;

                    // Begin: virtual-copy a slice of the database.
                    // The copy-on-write protection reduction on this
                    // multi-threaded task's pmap is a user shootdown.
                    const unsigned slice_pages =
                        static_cast<unsigned>(rng.range(1, 4));
                    const VAddr slice =
                        db + pageTrunc(static_cast<VAddr>(rng.below(
                                 (params_.db_pages - slice_pages) *
                                 kPageSize)));
                    VAddr copy = 0;
                    if (!kernel.vmCopy(server, *task, slice,
                                       slice_pages * kPageSize, &copy))
                        continue;

                    // Modify the copy: COW faults pull private pages.
                    for (unsigned p = 0; p < slice_pages; ++p) {
                        const bool stored = server.store32(
                            copy + p * kPageSize,
                            static_cast<std::uint32_t>(rng.next()));
                        MACH_ASSERT(stored);
                        server.compute(Tick(rng.exponential(14.0) *
                                            kMsec));
                    }

                    // Commit: write the recovery log through a kernel
                    // buffer; its free is a kernel shootdown.
                    const VAddr log =
                        kernel.kmemAlloc(server, 2 * kPageSize);
                    const bool logged = server.store32(log, 0x10c);
                    MACH_ASSERT(logged);
                    kernel.io().request(
                        server, Tick(rng.exponential(20.0) * kMsec));
                    kernel.kmemFree(server, log, 2 * kPageSize);

                    // Cleanup: drop the transaction's private copy
                    // (its touched pages make this a user shootdown).
                    kernel.vmDeallocate(server, *task, copy,
                                        slice_pages * kPageSize);
                    ++commits;

                    // Think time before the next transaction.
                    server.sleep(Tick(rng.exponential(45.0) * kMsec));
                }
            };

            std::vector<kern::Thread *> servers;
            for (unsigned s = 0; s < params_.servers; ++s) {
                servers.push_back(kernel.spawnThread(
                    task, "camelot-server" + std::to_string(s),
                    server_body));
            }
            for (kern::Thread *server : servers)
                self.join(*server);
        });

    driver.join(*coordinator);
}

} // namespace mach::apps
