#include "base/perturb.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace mach
{

void
SchedulePerturber::delayEvent(std::uint64_t seq, Tick extra)
{
    if (extra > 0)
        event_delays_[seq] += extra;
}

void
SchedulePerturber::delayBusAccess(std::uint64_t access, Tick extra)
{
    if (extra > 0)
        bus_delays_[access] += extra;
}

void
SchedulePerturber::add(const PerturbItem &item)
{
    if (item.bus)
        delayBusAccess(item.index, item.extra);
    else
        delayEvent(item.index, item.extra);
}

std::vector<PerturbItem>
SchedulePerturber::items() const
{
    std::vector<PerturbItem> out;
    out.reserve(size());
    for (const auto &[seq, extra] : event_delays_)
        out.push_back({false, seq, extra});
    for (const auto &[access, extra] : bus_delays_)
        out.push_back({true, access, extra});
    std::sort(out.begin(), out.end(),
              [](const PerturbItem &a, const PerturbItem &b) {
                  if (a.bus != b.bus)
                      return !a.bus;
                  return a.index < b.index;
              });
    return out;
}

SchedulePerturber
SchedulePerturber::fromItems(const std::vector<PerturbItem> &items)
{
    SchedulePerturber out;
    for (const PerturbItem &item : items)
        out.add(item);
    return out;
}

std::string
SchedulePerturber::format() const
{
    std::string out;
    char buf[64];
    for (const PerturbItem &item : items()) {
        std::snprintf(buf, sizeof(buf), "%s%c%llu+%llu",
                      out.empty() ? "" : ",", item.bus ? 'b' : 'e',
                      static_cast<unsigned long long>(item.index),
                      static_cast<unsigned long long>(item.extra));
        out += buf;
    }
    return out;
}

bool
SchedulePerturber::parse(const std::string &text, SchedulePerturber *out,
                         std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    SchedulePerturber parsed;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string item = text.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            return fail("empty item in schedule string");

        const char kind = item[0];
        if (kind != 'e' && kind != 'b')
            return fail("item '" + item + "': expected 'e' or 'b' prefix");
        const std::size_t plus = item.find('+');
        if (plus == std::string::npos || plus < 2 ||
            plus + 1 >= item.size()) {
            return fail("item '" + item + "': expected <index>+<ticks>");
        }

        char *rest = nullptr;
        const std::string index_str = item.substr(1, plus - 1);
        const std::uint64_t index =
            std::strtoull(index_str.c_str(), &rest, 10);
        if (rest == nullptr || *rest != '\0')
            return fail("item '" + item + "': bad index");
        const std::string extra_str = item.substr(plus + 1);
        const std::uint64_t extra =
            std::strtoull(extra_str.c_str(), &rest, 10);
        if (rest == nullptr || *rest != '\0' || extra == 0)
            return fail("item '" + item + "': bad tick count");

        parsed.add({kind == 'b', index, extra});
    }
    *out = std::move(parsed);
    return true;
}

} // namespace mach
