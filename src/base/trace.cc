#include "base/trace.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mach::trace
{

std::atomic<std::uint32_t> g_mask{None};

namespace
{
/** Serializes sink replacement and line emission across farm workers. */
std::mutex g_sink_mutex;
std::function<void(const std::string &)> g_sink;
/** Prepended to every line (fork children set "[child N] "). */
std::string g_line_prefix;

const char *
categoryName(Category category)
{
    switch (category) {
      case Shootdown:
        return "shootdown";
      case Pmap:
        return "pmap";
      case Vm:
        return "vm";
      case Sched:
        return "sched";
      case Intr:
        return "intr";
      default:
        return "trace";
    }
}
} // namespace

void
enable(std::uint32_t categories)
{
    g_mask.fetch_or(categories, std::memory_order_relaxed);
}

void
disable(std::uint32_t categories)
{
    g_mask.fetch_and(~categories, std::memory_order_relaxed);
}

void
setMask(std::uint32_t categories)
{
    g_mask.store(categories, std::memory_order_relaxed);
}

std::uint32_t
mask()
{
    return g_mask.load(std::memory_order_relaxed);
}

void
setSink(std::function<void(const std::string &)> sink)
{
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    g_sink = std::move(sink);
}

void
setLinePrefix(std::string prefix)
{
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    g_line_prefix = std::move(prefix);
}

std::uint32_t
parseCategories(const std::string &spec)
{
    std::uint32_t result = None;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string word = spec.substr(pos, comma - pos);
        if (word == "shootdown")
            result |= Shootdown;
        else if (word == "pmap")
            result |= Pmap;
        else if (word == "vm")
            result |= Vm;
        else if (word == "sched")
            result |= Sched;
        else if (word == "intr")
            result |= Intr;
        else if (word == "all")
            result |= All;
        pos = comma + 1;
    }
    return result;
}

void
initFromEnvironment()
{
    const char *spec = std::getenv("MACH_TRACE");
    if (spec != nullptr && *spec != '\0')
        enable(parseCategories(spec));
}

void
log(Category category, Tick now, const char *fmt, ...)
{
    char body[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(body, sizeof(body), fmt, ap);
    va_end(ap);

    char line[600];
    std::snprintf(line, sizeof(line), "%10llu us [%s] %s",
                  static_cast<unsigned long long>(now / kUsec),
                  categoryName(category), body);

    // One lock per emitted line only -- disabled categories never get
    // here -- keeping concurrent machines' lines whole.
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_sink) {
        if (g_line_prefix.empty())
            g_sink(line);
        else
            g_sink(g_line_prefix + line);
    } else {
        std::fprintf(stderr, "%s%s\n", g_line_prefix.c_str(), line);
    }
}

} // namespace mach::trace
