/**
 * @file
 * Periodic counter sampling into the timeline recorder.
 *
 * The Sampler schedules itself on the machine's event queue every
 * `interval` ticks and emits counter-track samples: per-CPU TLB hit
 * ratio, shootdown queue depth, idle/active state, plus machine-wide
 * bus accesses, live event-queue size, and free page frames. The
 * samples become 'C' events in the same trace file as the spans, so
 * Perfetto draws them as line charts above the timeline.
 *
 * Scheduling the sampler inserts events into the EventQueue and thus
 * shifts the `e<seq>` index space that perturbation schedules address
 * -- so sampling is opt-in (machsim --stats-interval) and is never
 * attached to checker trials that replay recorded schedules.
 */

#ifndef MACH_OBS_SAMPLER_HH
#define MACH_OBS_SAMPLER_HH

#include <deque>
#include <string>

#include "base/types.hh"
#include "sim/event_queue.hh"

namespace mach::vm
{
class Kernel;
} // namespace mach::vm

namespace mach::obs
{

class Recorder;

/** Self-rescheduling periodic counter sampler. */
class Sampler
{
  public:
    /**
     * Start sampling @p kernel's machine into its recorder every
     * @p interval ticks (first sample after one interval). The kernel
     * must outlive the sampler; the recorder must be enabled.
     */
    Sampler(vm::Kernel &kernel, Tick interval);
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /**
     * Cancel the pending sample event. Required before machine.run()
     * can drain its queue at end of run (the workload apps stop the
     * machine explicitly, so in practice the run ends first and stop()
     * just cleans up the last pending event).
     */
    void stop();

    std::uint64_t samplesTaken() const { return samples_; }

  private:
    void schedule();
    void sample();

    /**
     * Intern "cpuN.<suffix>" counter names: counter events keep a
     * `const char *`, so the strings live here (a deque never moves
     * them) and the Sampler must outlive the recorder's export.
     */
    const char *cpuCounterName(const char *suffix, CpuId id);

    std::deque<std::string> names_;
    vm::Kernel &kernel_;
    Tick interval_;
    std::uint64_t samples_ = 0;
    bool stopped_ = false;
    sim::EventId pending_{};
    bool pending_valid_ = false;
};

} // namespace mach::obs

#endif // MACH_OBS_SAMPLER_HH
