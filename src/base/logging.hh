/**
 * @file
 * Logging and error-exit helpers in the gem5 tradition.
 *
 * panic()  -- an internal invariant was violated (a bug in this library);
 *             prints and aborts so a core dump / debugger can be used.
 * fatal()  -- the caller/user asked for something unsupportable (bad
 *             configuration, invalid arguments); prints and exits(1).
 * warn()   -- something questionable happened but simulation continues.
 * inform() -- status output for the user.
 */

#ifndef MACH_BASE_LOGGING_HH
#define MACH_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mach
{

/** Print a formatted message tagged "panic:" and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message tagged "fatal:" and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message tagged "warn:". */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress or re-enable warn()/inform() output (used by tests). */
void setLogQuiet(bool quiet);

/**
 * Assert that an invariant holds; panic with the stringized expression
 * otherwise. Active in all build types (unlike assert()).
 */
#define MACH_ASSERT(expr)                                                  \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::mach::panic("assertion failed at %s:%d: %s",                 \
                          __FILE__, __LINE__, #expr);                      \
        }                                                                  \
    } while (0)

} // namespace mach

#endif // MACH_BASE_LOGGING_HH
