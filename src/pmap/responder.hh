/**
 * @file
 * Pluggable TLB-consistency responder interface.
 *
 * The paper's protocol talks about "processors using the pmap", but
 * nothing in the algorithm is CPU-specific: any agent that caches
 * translations and can be asked to invalidate them is a responder.
 * This interface widens the shootdown protocol's responder set beyond
 * kern::Cpu so DMA-capable devices with IOTLBs (dev::DmaDevice)
 * participate as first-class members.
 *
 * Responders occupy the tail of the CpuSet id space: ids
 * [0, ncpus) are CPUs, ids [ncpus, ncpus + devices) are registered
 * TlbResponders. A Pmap's in-use set carries both kinds of bits, so
 * othersUsing() naturally triggers a shootdown when only a device
 * still caches the space.
 *
 * The device-specific wrinkle the interface exposes: a device may have
 * a DMA transfer in flight through the translation being revoked. The
 * initiator calls requestDrain(), which bounds the remaining transfer
 * time (complete-or-abort within dev_drain_bound), and then spins
 * until inFlight() clears -- the analogue of the paper's "wait until
 * every user acknowledged", with a bounded rather than interrupt-paced
 * acknowledgement latency.
 */

#ifndef MACH_PMAP_RESPONDER_HH
#define MACH_PMAP_RESPONDER_HH

#include <string>

#include "base/types.hh"

namespace mach::hw
{
class Tlb;
} // namespace mach::hw

namespace mach::pmap
{

/** A non-CPU agent that caches translations and answers shootdowns. */
class TlbResponder
{
  public:
    virtual ~TlbResponder() = default;

    /** Responder id in the shared CPU+device id space (>= ncpus). */
    virtual CpuId id() const = 0;

    /** NUMA node the responder's bus interface sits on. */
    virtual unsigned node() const = 0;

    /** The translation cache the shootdown protocol must keep fresh. */
    virtual hw::Tlb &tlb() = 0;
    virtual const hw::Tlb &tlb() const = 0;

    /**
     * True while a DMA transfer that already consumed a translation is
     * still on the wire. The initiator may not complete its revoke
     * while this holds: the transfer commits through the old mapping.
     */
    virtual bool inFlight() const = 0;

    /**
     * Ask an in-flight transfer to complete or abort within the
     * configured drain bound. Idempotent; a no-op when nothing is in
     * flight. Does not consume the caller's simulated time.
     */
    virtual void requestDrain() = 0;

    /** Short label for traces and audit reports, e.g. "dev2". */
    virtual std::string describe() const = 0;
};

} // namespace mach::pmap

#endif // MACH_PMAP_RESPONDER_HH
