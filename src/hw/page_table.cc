#include "hw/page_table.hh"

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"

namespace mach::hw
{

namespace
{
constexpr unsigned kLeafBits = 10;
constexpr unsigned kLeafMask = (1u << kLeafBits) - 1;
constexpr std::uint32_t kRefMod = pte::kRef | pte::kMod;

unsigned
rootIndex(Vpn vpn)
{
    return vpn >> kLeafBits;
}

unsigned
leafIndex(Vpn vpn)
{
    return vpn & kLeafMask;
}
} // namespace

PageTable::PageTable(PhysMem *mem) : mem_(mem)
{
    MACH_ASSERT(mem_ != nullptr);
    root_pfn_ = mem_->allocFrame();
    walkCacheClear();
}

void
PageTable::setWalkCache(bool on)
{
    walk_cache_enabled_ = on;
    walkCacheClear();
}

void
PageTable::walkCacheClear() const
{
    for (WalkCacheLine &line : walk_cache_)
        line = {kNoWalkKey, 0};
}

PAddr
PageTable::leafBase(unsigned node, unsigned root_index) const
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(node) << 32) | root_index;
    if (walk_cache_enabled_) {
        for (const WalkCacheLine &line : walk_cache_) {
            if (line.key == key) {
                ++walk_cache_hits_;
                return line.leaf_base;
            }
        }
        ++walk_cache_misses_;
    }
    const PAddr root_addr = PAddr{rootOf(node)} << kPageShift;
    const std::uint32_t root =
        mem_->read32(root_addr + root_index * 4);
    if (!pte::valid(root))
        return 0; // Negative results are never cached: a later leaf
                  // allocation must be visible without maintenance.
    const PAddr base = PAddr{pte::pfn(root)} << kPageShift;
    if (walk_cache_enabled_) {
        walk_cache_[walk_cache_fill_] = {key, base};
        if (++walk_cache_fill_ >= kWalkCacheLines)
            walk_cache_fill_ = 0;
    }
    return base;
}

PageTable::~PageTable()
{
    collect();
    for (unsigned node = 1; node < replicas(); ++node)
        mem_->freeFrame(rootOf(node));
    mem_->freeFrame(root_pfn_);
}

void
PageTable::enableReplicas(unsigned nodes)
{
    MACH_ASSERT(replica_roots_.empty() && leaf_count_ == 0);
    replica_roots_.reserve(nodes - 1);
    for (unsigned node = 1; node < nodes; ++node)
        replica_roots_.push_back(mem_->allocFrame(node));
}

PAddr
PageTable::rootAddr() const
{
    return root_pfn_ << kPageShift;
}

std::uint32_t
PageTable::rootEntry(Vpn vpn) const
{
    return mem_->read32(rootAddr() + rootIndex(vpn) * 4);
}

WalkResult
PageTable::walk(Vpn vpn, unsigned node) const
{
    if (replica_roots_.empty())
        node = 0;
    WalkResult result;
    // The walker is charged for both level reads whether or not the
    // walk cache short-circuits the root read on the host.
    const PAddr leaf_base = leafBase(node, rootIndex(vpn));
    result.memory_reads = 1;
    if (leaf_base == 0)
        return result;
    result.leaf_present = true;
    result.pte = mem_->read32(leaf_base + leafIndex(vpn) * 4);
    result.memory_reads = 2;
    return result;
}

bool
PageTable::leafPresent(Vpn vpn) const
{
    return pte::valid(rootEntry(vpn));
}

std::uint32_t
PageTable::readPte(Vpn vpn) const
{
    std::uint32_t value = walk(vpn).pte;
    // Each node's MMU writes ref/mod bits back into its own replica;
    // the authoritative view is the union.
    if (!replica_roots_.empty() && pte::valid(value)) {
        for (unsigned node = 1; node < replicas(); ++node) {
            const std::uint32_t copy = walk(vpn, node).pte;
            if (pte::valid(copy))
                value |= copy & kRefMod;
        }
    }
    return value;
}

PAddr
PageTable::pteAddr(Vpn vpn, unsigned node) const
{
    if (replica_roots_.empty())
        node = 0;
    const PAddr leaf_base = leafBase(node, rootIndex(vpn));
    if (leaf_base == 0)
        return 0;
    return leaf_base + leafIndex(vpn) * 4;
}

void
PageTable::replicaWrite(unsigned node, Vpn vpn, std::uint32_t value)
{
    const PAddr root_addr = PAddr{rootOf(node)} << kPageShift;
    const PAddr slot = root_addr + rootIndex(vpn) * 4;
    std::uint32_t root = mem_->read32(slot);
    if (!pte::valid(root)) {
        if (!pte::valid(value))
            return; // Invalidating an unmapped page: nothing to do.
        const Pfn leaf = mem_->allocFrame(node);
        root = pte::make(leaf, ProtReadWrite);
        mem_->write32(slot, root);
    }
    const PAddr leaf_addr =
        (pte::pfn(root) << kPageShift) + leafIndex(vpn) * 4;
    mem_->write32(leaf_addr, value);
}

void
PageTable::writePte(Vpn vpn, std::uint32_t value)
{
    std::uint32_t root = rootEntry(vpn);
    if (!pte::valid(root)) {
        if (!pte::valid(value)) {
            // Invalidating a page the primary never mapped: the
            // replicas cannot have it either (fan-out is a superset).
            return;
        }
        const Pfn leaf = mem_->allocFrame();
        ++leaf_count_;
        root = pte::make(leaf, ProtReadWrite);
        mem_->write32(rootAddr() + rootIndex(vpn) * 4, root);
    }
    const PAddr leaf_addr =
        (pte::pfn(root) << kPageShift) + leafIndex(vpn) * 4;
    mem_->write32(leaf_addr, value);

    if (replica_roots_.empty())
        return;
    if (deferred_sync_) {
        pending_.emplace_back(vpn, value);
        return;
    }
    for (unsigned node = 1; node < replicas(); ++node)
        replicaWrite(node, vpn, value);
}

void
PageTable::syncReplicas()
{
    for (const auto &[vpn, value] : pending_) {
        for (unsigned node = 1; node < replicas(); ++node)
            replicaWrite(node, vpn, value);
    }
    pending_.clear();
}

std::vector<std::string>
PageTable::replicaDivergence(Vpn start, Vpn end) const
{
    std::vector<std::string> diverged;
    if (replica_roots_.empty() || start >= end)
        return diverged;
    char buf[128];
    // Forward direction: every primary mapping must appear identically
    // (modulo per-node ref/mod bits) in every replica.
    forEachValid(start, end, [&](Vpn vpn, std::uint32_t entry) {
        for (unsigned node = 1; node < replicas(); ++node) {
            const std::uint32_t copy = walk(vpn, node).pte;
            if ((copy & ~kRefMod) == (entry & ~kRefMod))
                continue;
            std::snprintf(buf, sizeof(buf),
                          "replica %u vpn 0x%x holds 0x%08x but the "
                          "primary PTE is 0x%08x",
                          node, vpn, copy, entry);
            diverged.emplace_back(buf);
        }
    });
    // Reverse direction: a replica must not map what the primary does
    // not (e.g. a deferred invalidation that never fanned out).
    for (unsigned node = 1; node < replicas(); ++node) {
        Vpn vpn = start;
        while (vpn < end) {
            const PAddr root_addr = PAddr{rootOf(node)} << kPageShift;
            const std::uint32_t root =
                mem_->read32(root_addr + rootIndex(vpn) * 4);
            if (!pte::valid(root)) {
                const Vpn next = (vpn | kLeafMask) + 1;
                vpn = next > vpn ? next : end;
                continue;
            }
            const PAddr leaf_base = pte::pfn(root) << kPageShift;
            const Vpn leaf_end =
                std::min<Vpn>(end, (vpn | kLeafMask) + 1);
            for (; vpn < leaf_end; ++vpn) {
                const std::uint32_t copy =
                    mem_->read32(leaf_base + leafIndex(vpn) * 4);
                if (!pte::valid(copy) || pte::valid(walk(vpn).pte))
                    continue;
                std::snprintf(buf, sizeof(buf),
                              "replica %u maps vpn 0x%x (0x%08x) but "
                              "the primary does not",
                              node, vpn, copy);
                diverged.emplace_back(buf);
            }
        }
    }
    return diverged;
}

void
PageTable::forEachValid(
    Vpn start, Vpn end,
    const std::function<void(Vpn, std::uint32_t)> &fn) const
{
    Vpn vpn = start;
    while (vpn < end) {
        const std::uint32_t root = rootEntry(vpn);
        if (!pte::valid(root)) {
            // Whole leaf missing: skip to the next leaf boundary.
            const Vpn next = (vpn | kLeafMask) + 1;
            vpn = next > vpn ? next : end;
            continue;
        }
        const PAddr leaf_base = pte::pfn(root) << kPageShift;
        const Vpn leaf_end = std::min<Vpn>(end, (vpn | kLeafMask) + 1);
        for (; vpn < leaf_end; ++vpn) {
            const std::uint32_t entry =
                mem_->read32(leaf_base + leafIndex(vpn) * 4);
            if (pte::valid(entry))
                fn(vpn, entry);
        }
    }
}

unsigned
PageTable::countValid(Vpn start, Vpn end) const
{
    unsigned count = 0;
    forEachValid(start, end,
                 [&count](Vpn, std::uint32_t) { ++count; });
    return count;
}

void
PageTable::collectReplica(unsigned node)
{
    // Freeing leaves invalidates the cached root -> leaf pointers.
    walkCacheClear();
    const PAddr root_addr = PAddr{rootOf(node)} << kPageShift;
    for (unsigned index = 0; index < kEntriesPerTable; ++index) {
        const PAddr slot = root_addr + index * 4;
        const std::uint32_t root = mem_->read32(slot);
        if (!pte::valid(root))
            continue;
        mem_->freeFrame(pte::pfn(root));
        mem_->write32(slot, 0);
    }
}

void
PageTable::collect()
{
    pending_.clear();
    walkCacheClear();
    for (unsigned index = 0; index < kEntriesPerTable; ++index) {
        const PAddr slot = rootAddr() + index * 4;
        const std::uint32_t root = mem_->read32(slot);
        if (!pte::valid(root))
            continue;
        mem_->freeFrame(pte::pfn(root));
        mem_->write32(slot, 0);
        --leaf_count_;
    }
    MACH_ASSERT(leaf_count_ == 0);
    for (unsigned node = 1; node < replicas(); ++node)
        collectReplica(node);
}

} // namespace mach::hw
