# Benchmark harness binaries: one per paper table / figure, plus the
# supporting micro benchmarks. Every binary in ${CMAKE_BINARY_DIR}/bench
# runs unattended and prints the rows the paper reports.

function(mach_bench name)
    add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/${name}.cc)
    target_link_libraries(${name} PRIVATE mach)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

mach_bench(fig2_basic_cost)
mach_bench(table2_kernel_shootdowns)
mach_bench(table1_lazy_eval)
mach_bench(table3_user_shootdowns)
mach_bench(table4_responders)
mach_bench(validation_perturbation)
mach_bench(scaling_extrapolation)
mach_bench(hw_ablations)

# Host-performance micro benchmarks (google-benchmark).
add_executable(micro_primitives ${CMAKE_CURRENT_LIST_DIR}/micro_primitives.cc)
target_link_libraries(micro_primitives PRIVATE mach benchmark::benchmark)
set_target_properties(micro_primitives PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
mach_bench(strategy_comparison)
mach_bench(host_perf)
mach_bench(pool_restructuring)
mach_bench(ipi_crossover)
mach_bench(policy_ablations)
mach_bench(virtual_cache)
mach_bench(numa_ablations)
mach_bench(serving_slo)
mach_bench(device_ablations)
