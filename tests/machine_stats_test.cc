/**
 * @file
 * Tests for the machine-wide statistics snapshot/diff/report module.
 */

#include <gtest/gtest.h>

#include "apps/consistency_tester.hh"
#include "hw/bus.hh"
#include "xpr/machine_stats.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

TEST(MachineStatsTest, CaptureReflectsActivity)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    const xpr::MachineStats before = xpr::MachineStats::capture(kernel);

    apps::ConsistencyTester tester({.children = 4, .warmup = 15 * kMsec});
    tester.execute(kernel);

    const xpr::MachineStats after = xpr::MachineStats::capture(kernel);
    const xpr::MachineStats delta = after.since(before);

    EXPECT_EQ(delta.cpus.size(), 16u);
    EXPECT_GE(delta.shootdowns_initiated, 1u);
    EXPECT_GE(delta.ipis_sent, 4u);
    EXPECT_GT(delta.faults_resolved, 0u);
    EXPECT_GT(delta.zero_fills, 0u);
    EXPECT_GT(delta.now_usec, 0u);

    const xpr::CpuStats totals = delta.totals();
    EXPECT_GT(totals.tlb_hits, 0u);
    EXPECT_GT(totals.tlb_misses, 0u);
    EXPECT_GT(totals.interrupts_taken, 0u);
    EXPECT_GT(totals.hitRatio(), 0.0);
    EXPECT_LT(totals.hitRatio(), 1.0);
}

TEST(MachineStatsTest, SinceSubtractsCleanly)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 2;
    vm::Kernel kernel(config);
    const xpr::MachineStats a = xpr::MachineStats::capture(kernel);
    const xpr::MachineStats self_delta = a.since(a);
    EXPECT_EQ(self_delta.shootdowns_initiated, 0u);
    EXPECT_EQ(self_delta.totals().tlb_hits, 0u);
    EXPECT_EQ(self_delta.now_usec, 0u);
}

TEST(MachineStatsTest, XprOverflowIsDetectedAndWarned)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.xpr_capacity = 4; // Absurdly small: guaranteed wrap.
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 6, .warmup = 15 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(kernel.machine().xpr().overflowed());
    EXPECT_EQ(kernel.machine().xpr().size(), 4u);
}

TEST(MachineStatsTest, MemAccessPaysBusContention)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 2;
    config.mem_jitter = 0;
    config.bus_contended_jitter = 0;
    config.bus_contention_threshold = 1;
    vm::Kernel kernel(config);
    kernel.start();
    kernel.spawnThread(nullptr, "bus-probe", [&](kern::Thread &self) {
        kern::Machine &m = kernel.machine();
        const Tick t0 = m.now();
        self.cpu().memAccess(10);
        const Tick uncontended = m.now() - t0;

        hw::Bus::User a(m.bus());
        hw::Bus::User b(m.bus()); // Above threshold now.
        const Tick t1 = m.now();
        self.cpu().memAccess(10);
        const Tick contended = m.now() - t1;
        EXPECT_GT(contended, uncontended);
        EXPECT_EQ(contended - uncontended,
                  10 * m.cfg().bus_penalty_per_user);
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();
}

TEST(MachineStatsTest, ReportMentionsEverySection)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 2, .warmup = 10 * kMsec});
    tester.execute(kernel);

    const std::string report =
        xpr::MachineStats::capture(kernel).report();
    EXPECT_NE(report.find("tlb:"), std::string::npos);
    EXPECT_NE(report.find("vm :"), std::string::npos);
    EXPECT_NE(report.find("tlb consistency:"), std::string::npos);
    EXPECT_NE(report.find("shootdowns"), std::string::npos);
}

} // namespace
} // namespace mach
