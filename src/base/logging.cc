#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mach
{

namespace
{
/**
 * Atomic because farm worker threads (src/farm) call setLogQuiet /
 * warn concurrently; stderr itself is line-locked by libc.
 */
std::atomic<bool> log_quiet{false};

void
vlog(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogQuiet(bool quiet)
{
    log_quiet.store(quiet, std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (log_quiet.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (log_quiet.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("info", fmt, ap);
    va_end(ap);
}

} // namespace mach
