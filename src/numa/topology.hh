/**
 * @file
 * NUMA topology: nodes, distance matrix, interconnect cost model.
 *
 * The paper's machine is one 16-processor bus; this layer composes N
 * such machines (each a bus + a local slice of physical memory + up to
 * 16 CPUs) over a simulated interconnect so one kern::Machine can model
 * 2-8 sockets / 32-128 CPUs deterministically. Distances use the
 * ACPI SLIT convention: the diagonal is 10, a remote entry d means a
 * remote access costs d/10 of the local one. The extra (d-10)/10 share
 * is charged as a deterministic flat penalty on top of the local bus
 * price -- no RNG draws, so enabling NUMA never shifts the per-bus
 * jitter streams the determinism goldens pin.
 */

#ifndef MACH_NUMA_TOPOLOGY_HH
#define MACH_NUMA_TOPOLOGY_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "hw/machine_config.hh"

namespace mach::numa
{

/** Node layout and distances for one machine (immutable after build). */
class Topology
{
  public:
    /** Local (diagonal) SLIT distance, as in ACPI. */
    static constexpr unsigned kLocalDistance = 10;

    /** Build from a validated config; fatal() on a bad distance spec. */
    explicit Topology(const hw::MachineConfig *config);

    unsigned nodes() const { return nodes_; }
    unsigned cpusPerNode() const { return cpus_per_node_; }

    /** Node owning processor @p id (contiguous blocks). */
    unsigned nodeOfCpu(CpuId id) const { return id / cpus_per_node_; }

    /** SLIT distance between two nodes. */
    unsigned distance(unsigned a, unsigned b) const
    {
        return distance_[a * nodes_ + b];
    }

    /**
     * Extra ticks a node-@p from CPU pays, on top of the local price
     * @p base, to reach node @p to: base * (distance - 10) / 10.
     * Zero when local or when the machine has one node.
     */
    Tick remoteCost(unsigned from, unsigned to, Tick base) const
    {
        const unsigned d = distance(from, to);
        return d <= kLocalDistance
                   ? 0
                   : base * (d - kLocalDistance) / kLocalDistance;
    }

    /**
     * Parse a "10,25;25,10"-style matrix (rows ';'-separated, entries
     * ','-separated) into @p out (row-major, nodes x nodes). Returns
     * false with a message in @p error when the spec is not a
     * symmetric nodes x nodes matrix with diagonal 10 and off-diagonal
     * entries in [10, 255].
     */
    static bool parseDistance(const std::string &spec, unsigned nodes,
                              std::vector<unsigned> *out,
                              std::string *error);

  private:
    unsigned nodes_;
    unsigned cpus_per_node_;
    std::vector<unsigned> distance_;
};

} // namespace mach::numa

#endif // MACH_NUMA_TOPOLOGY_HH
