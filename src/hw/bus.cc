// Bus is header-only; this file exists to anchor the translation unit.
#include "hw/bus.hh"
