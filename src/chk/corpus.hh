/**
 * @file
 * The persistent schedule corpus behind coverage-guided exploration.
 *
 * A Corpus is the campaign-global memory of which protocol
 * interleavings have been seen (the signature bucket map, per
 * scenario) and which schedules have already been tried (the dedup
 * set). A trial is admitted when its interleaving signatures
 * (obs/signature.hh) add at least one new bucket; admitted entries
 * are kept in memory and -- when the corpus has a directory -- each
 * written to its own file:
 *
 *   chk_corpus/<scenario>-<hash16>.corpus
 *
 * The file is a small line-oriented text record (see formatEntry):
 * scenario id, canonical schedule string, run digest, verdict,
 * discovery metadata, and the signature list. Entries are
 * deterministic replays by construction -- `machsim --app chk
 * --scenario <id> --schedule <schedule>` reproduces the digest
 * bit-exactly -- which is what the corpus determinism golden test
 * enforces at several farm widths.
 *
 * Tried-schedule hashes are appended to <dir>/tried.log so a resumed
 * campaign (the weekly workflow, a re-run explorer lane) never spends
 * budget re-running a directive set any earlier campaign already
 * tried; the explorer reports those skips as duplicate_probes_skipped.
 */

#ifndef MACH_CHK_CORPUS_HH
#define MACH_CHK_CORPUS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mach::chk
{

/** One coverage-novel schedule and what its replay produced. */
struct CorpusEntry
{
    std::string scenario;
    /** Canonical SchedulePerturber::format() string ("" = baseline). */
    std::string schedule;
    /** Per-quiescent-window interleaving signatures of the replay. */
    std::vector<std::uint64_t> signatures;
    /** TrialResult::digest of the replay (bit-exact contract). */
    std::uint64_t digest = 0;
    /** Campaign trial ordinal at discovery (1 = baseline). */
    std::uint64_t trial = 0;
    /** Buckets this entry added when admitted (novelty weight). */
    std::uint64_t new_buckets = 0;
    /** The trial failed (safety or liveness) -- corpus keeps it too. */
    bool failed = false;
};

/** Signature buckets + tried-schedule dedup + on-disk persistence. */
class Corpus
{
  public:
    /** In-memory corpus (no persistence). */
    Corpus() = default;

    /**
     * Corpus rooted at @p dir: existing *.corpus entries and
     * tried.log are loaded immediately; the directory is created on
     * first write if missing.
     */
    explicit Corpus(std::string dir);

    /**
     * Merge every *.corpus entry (and tried.log) under @p dir into
     * the in-memory state without adopting @p dir for writes -- how a
     * campaign resumes from a committed, read-only seed corpus.
     * Returns false (with @p error) when the directory exists but an
     * entry fails to parse; a missing directory is not an error.
     */
    bool loadDir(const std::string &dir, std::string *error = nullptr);

    const std::string &dir() const { return dir_; }
    const std::vector<CorpusEntry> &entries() const { return entries_; }

    /** Entries for one scenario, excluding the baseline ("") one. */
    std::vector<const CorpusEntry *>
    mutationPool(const std::string &scenario) const;

    /** Distinct signature buckets seen for @p scenario so far. */
    std::size_t buckets(const std::string &scenario) const;

    /**
     * Admit a trial: returns how many new buckets its signatures
     * added. When > 0 the entry (with new_buckets filled in) is
     * stored -- and written to disk if the corpus has a directory.
     */
    std::uint64_t admit(CorpusEntry entry);

    /** Has this (scenario, schedule) already been tried? */
    bool tried(const std::string &scenario,
               const std::string &schedule) const;

    /**
     * Mark (scenario, schedule) tried. Returns false when it already
     * was -- the caller counts that as a duplicate probe skipped.
     */
    bool markTried(const std::string &scenario,
                   const std::string &schedule);

    /** Stable dedup hash over scenario + canonical schedule. */
    static std::uint64_t scheduleHash(const std::string &scenario,
                                      const std::string &schedule);

    /** The on-disk text form of one entry. */
    static std::string formatEntry(const CorpusEntry &entry);

    /** Parse formatEntry() text; returns false with @p error set. */
    static bool parseEntry(const std::string &text, CorpusEntry *out,
                           std::string *error = nullptr);

    /** The file name an entry persists under (scenario-hash16). */
    static std::string entryFileName(const CorpusEntry &entry);

  private:
    void absorb(CorpusEntry entry, bool rewrite);
    bool persistEntry(const CorpusEntry &entry) const;
    void persistTried(std::uint64_t hash) const;

    std::string dir_;
    std::vector<CorpusEntry> entries_;
    /** scenario -> distinct window signatures seen. */
    std::map<std::string, std::set<std::uint64_t>> buckets_;
    /** scheduleHash() values already tried. */
    std::set<std::uint64_t> tried_;
};

} // namespace mach::chk

#endif // MACH_CHK_CORPUS_HH
