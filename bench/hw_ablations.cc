/**
 * @file
 * Section 9: hardware support options for TLB consistency.
 *
 * Each option is evaluated two ways:
 *
 *  1. The Section 5.1 tester (k = 4 and k = 14 children) measures the
 *     basic cost: initiator synchronization time, responder ISR time,
 *     and interrupts sent. The tester must report consistency under
 *     every option -- the algorithm variants are load-bearing.
 *
 *  2. The Mach-build workload measures the effect on kernel-pmap
 *     shootdowns, which is where the high-priority software interrupt
 *     pays off: it lets the kernel mask device interrupts without
 *     blocking shootdowns, pulling kernel shootdown times down toward
 *     user shootdown times and removing the long skew tail.
 *
 * Expected shapes, from the paper:
 *  - multicast/broadcast IPIs replace the initiator's serialized send
 *    loop with one fixed cost (broadcast over-interrupts bystanders);
 *  - remote TLB invalidation removes responder overhead entirely and
 *    most of the initiator's synchronization;
 *  - software reload / no-writeback TLBs let responders acknowledge
 *    and return instead of stalling for the update;
 *  - the high-priority software interrupt removes the kernel-pmap
 *    skew caused by interrupt-masked windows.
 */

#include "bench_common.hh"

#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

struct Option
{
    const char *name;
    void (*apply)(hw::MachineConfig &);
};

const Option kOptions[] = {
    {"baseline", [](hw::MachineConfig &) {}},
    {"multicast-ipi",
     [](hw::MachineConfig &c) { c.multicast_ipi = true; }},
    {"broadcast-ipi",
     [](hw::MachineConfig &c) { c.broadcast_ipi = true; }},
    {"software-reload",
     [](hw::MachineConfig &c) { c.tlb_software_reload = true; }},
    {"no-refmod-writeback",
     [](hw::MachineConfig &c) { c.tlb_no_refmod_writeback = true; }},
    {"interlocked-refmod",
     [](hw::MachineConfig &c) { c.tlb_interlocked_refmod = true; }},
    {"remote-invalidate",
     [](hw::MachineConfig &c) {
         c.tlb_remote_invalidate = true;
         c.tlb_no_refmod_writeback = true;
     }},
    {"high-priority-ipi",
     [](hw::MachineConfig &c) { c.high_priority_ipi = true; }},
};

constexpr unsigned kKs[] = {4u, 14u};

/** One tester measurement (one k) under one hardware option. */
struct ProbeCell
{
    bool consistent = false;
    double init_usec = 0.0;
    double resp_usec = 0.0;
    std::uint64_t ipis = 0;
};

ProbeCell
testerProbe(const Option &option, unsigned k)
{
    hw::MachineConfig config;
    option.apply(config);
    config.seed = 0xab1a7e + k;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester(
        {.children = k, .warmup = 30 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    ProbeCell cell;
    cell.consistent = tester.consistent();
    const auto &user = result.analysis.user_initiator;
    const auto &resp = result.analysis.responder;
    cell.init_usec = user.time_usec.mean();
    cell.resp_usec = resp.events ? resp.time_usec.mean() : 0.0;
    cell.ipis = kernel.pmaps().shoot().interrupts_sent;
    return cell;
}

struct HipriRow
{
    double mean_usec = 0.0;
    double stddev_usec = 0.0;
    double p90_usec = 0.0;
    std::uint64_t events = 0;
};

HipriRow
measureHipri(bool high)
{
    hw::MachineConfig config;
    config.high_priority_ipi = high;
    config.seed = 0xab1a7e;
    AppRun run = runApp(0, config);
    const auto &k = run.result.analysis.kernel_initiator;
    return HipriRow{k.time_usec.mean(), k.time_usec.stddev(),
                    k.time_usec.percentile(0.9), k.events};
}

struct AsidRow
{
    bool consistent = false;
    std::uint64_t flushes = 0;
};

AsidRow
measureAsid(bool asid)
{
    hw::MachineConfig config;
    config.tlb_asid_tags = asid;
    config.seed = 0xab1a7e;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester(
        {.children = 6, .warmup = 30 * kMsec});
    tester.execute(kernel);
    AsidRow row;
    row.consistent = tester.consistent();
    for (CpuId id = 0; id < kernel.machine().ncpus(); ++id)
        row.flushes += kernel.machine().cpu(id).tlb().flushes;
    return row;
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // Every cell is an independent machine; measure them all on the
    // bench farm, then print the tables in fixed order.
    constexpr std::size_t kNumOptions = std::size(kOptions);
    std::vector<ProbeCell> cells(kNumOptions * std::size(kKs));
    HipriRow hipri[2];
    AsidRow asid[2];
    std::vector<std::function<void()>> jobs;
    for (std::size_t o = 0; o < kNumOptions; ++o)
        for (std::size_t i = 0; i < std::size(kKs); ++i)
            jobs.push_back([&cells, o, i] {
                cells[o * std::size(kKs) + i] =
                    testerProbe(kOptions[o], kKs[i]);
            });
    for (int high = 0; high < 2; ++high)
        jobs.push_back(
            [&hipri, high] { hipri[high] = measureHipri(high != 0); });
    for (int tags = 0; tags < 2; ++tags)
        jobs.push_back(
            [&asid, tags] { asid[tags] = measureAsid(tags != 0); });
    runFarmed(std::move(jobs));

    std::printf("Section 9 ablations: basic shootdown cost under each "
                "hardware option\n");
    std::printf("(Section 5.1 tester; consistency verified in every "
                "configuration)\n\n");

    for (std::size_t o = 0; o < kNumOptions; ++o) {
        std::printf("%-22s", kOptions[o].name);
        for (std::size_t i = 0; i < std::size(kKs); ++i) {
            const ProbeCell &cell = cells[o * std::size(kKs) + i];
            if (!cell.consistent) {
                std::printf("  !! INCONSISTENT at k=%u\n", kKs[i]);
                return 1;
            }
            std::printf("  k=%-2u init %6.0fus resp %5.0fus ipi %3llu",
                        kKs[i], cell.init_usec, cell.resp_usec,
                        static_cast<unsigned long long>(cell.ipis));
        }
        std::printf("\n");
    }

    // ---- The high-priority software interrupt vs the kernel skew ----
    std::printf("\nkernel-pmap shootdowns (Mach build) with and "
                "without the high-priority software interrupt:\n");
    for (int high = 0; high < 2; ++high) {
        const HipriRow &row = hipri[high];
        std::printf("  %-20s mean %5.0f +- %-5.0f us   90th %5.0f us "
                    "(%llu events)\n",
                    high ? "high-priority ipi" : "baseline",
                    row.mean_usec, row.stddev_usec, row.p90_usec,
                    static_cast<unsigned long long>(row.events));
    }
    std::printf("(paper: the option would reduce kernel shootdown "
                "times to more closely match user shootdowns and "
                "eliminate the skew from interrupt-disabled "
                "windows)\n");

    // ---- Address-space tags (Section 10 extension) -------------------
    std::printf("\naddress-space-tagged TLB (MIPS-style, Section 10 "
                "extension):\n");
    for (int tags = 0; tags < 2; ++tags) {
        const AsidRow &row = asid[tags];
        std::printf("  %-20s consistent %-3s  whole-TLB flushes %llu\n",
                    tags ? "asid tags" : "flush-on-switch",
                    row.consistent ? "yes" : "NO",
                    static_cast<unsigned long long>(row.flushes));
        if (!row.consistent)
            return 1;
    }
    std::printf("(tags keep entries across context switches; the "
                "pmap stays 'in use' until its entries are explicitly "
                "flushed)\n");
    return 0;
}
