/**
 * @file
 * Tests for the Section 3 delayed-flush consistency technique and the
 * Section 8 kernel-pool restructuring.
 */

#include <gtest/gtest.h>

#include "apps/agora.hh"
#include "apps/camelot.hh"
#include "apps/consistency_tester.hh"
#include "apps/mach_build.hh"
#include "apps/parthenon.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

void
inKernel(const hw::MachineConfig &config,
         const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    setLogQuiet(true);
    vm::Kernel kernel(config);
    kernel.start();
    bool finished = false;
    kernel.spawnThread(nullptr, "strategy-driver",
                       [&](kern::Thread &driver) {
                           body(kernel, driver);
                           finished = true;
                           kernel.machine().ctx().requestStop();
                       });
    kernel.machine().run();
    ASSERT_TRUE(finished);
}

// ---------------------------------------------------------------------
// Delayed flush (technique 2)
// ---------------------------------------------------------------------

hw::MachineConfig
delayedConfig()
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 8;
    config.consistency_strategy = hw::ConsistencyStrategy::DelayedFlush;
    config.tlb_no_refmod_writeback = true;
    return config;
}

TEST(DelayedFlush, TesterStaysConsistent)
{
    vm::Kernel kernel(delayedConfig());
    apps::ConsistencyTester tester({.children = 5, .warmup = 25 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    // It really went through the delayed path, not a shootdown.
    EXPECT_GT(kernel.pmaps().shoot().delayed_waits, 0u);
    EXPECT_EQ(kernel.pmaps().shoot().interrupts_sent, 0u);
}

TEST(DelayedFlush, MappingChangeWaitsOutTheFlushes)
{
    inKernel(delayedConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        VAddr va = 0;
        bool stop = false;

        // One thread keeps the page hot on another processor.
        kern::Thread *toucher = kernel.spawnThread(
            task, "toucher",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                              kPageSize, true));
                while (!stop) {
                    self.access(va, ProtWrite);
                    self.cpu().advance(500 * kUsec);
                }
            },
            1);
        kern::Thread *protector = kernel.spawnThread(
            task, "protector",
            [&](kern::Thread &self) {
                self.sleep(30 * kMsec);
                const Tick before = kernel.machine().now();
                ASSERT_TRUE(kernel.vmProtect(self, *task, va,
                                             kPageSize, ProtRead));
                const Tick took = kernel.machine().now() - before;
                // The op had to wait for a timer-driven flush: its
                // latency is of timer-period magnitude, far beyond a
                // shootdown's ~1 ms.
                EXPECT_GT(took, 3 * kMsec);
                stop = true;
            },
            2);
        drv.join(*protector);
        drv.join(*toucher);
    });
}

TEST(DelayedFlush, RequiresNoWritebackTlb)
{
    hw::MachineConfig config;
    config.consistency_strategy = hw::ConsistencyStrategy::DelayedFlush;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "no_refmod_writeback");
}

TEST(DelayedFlush, IdleProcessorsDoNotStallTheWait)
{
    // Only the initiator's CPU and one toucher run; the other six are
    // idle and take no timer interrupts -- the wait must still end.
    vm::Kernel kernel(delayedConfig());
    apps::ConsistencyTester tester({.children = 1, .warmup = 20 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    EXPECT_EQ(result.analysis.user_initiator.events, 1u);
}

// ---------------------------------------------------------------------
// Kernel pools (Section 8)
// ---------------------------------------------------------------------

hw::MachineConfig
pooledConfig(unsigned ncpus = 16, unsigned pools = 4)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = ncpus;
    config.kernel_pools = pools;
    return config;
}

TEST(KernelPools, ValidateRejectsUnevenSplit)
{
    hw::MachineConfig config;
    config.ncpus = 16;
    config.kernel_pools = 3;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "kernel_pools");
}

TEST(KernelPools, PoolGeometry)
{
    vm::Kernel kernel(pooledConfig(16, 4));
    kern::Machine &m = kernel.machine();
    EXPECT_EQ(m.poolOfCpu(0), 0u);
    EXPECT_EQ(m.poolOfCpu(3), 0u);
    EXPECT_EQ(m.poolOfCpu(4), 1u);
    EXPECT_EQ(m.poolOfCpu(15), 3u);

    const Vpn kernel_lo = vaToVpn(kern::Machine::kKernelBase);
    EXPECT_EQ(m.poolOfKernelVpn(kernel_lo), 0);
    EXPECT_EQ(m.poolOfKernelVpn(kernel_lo - 1), -1); // User space.
}

TEST(KernelPools, KmemComesFromTheCallersPoolSlice)
{
    inKernel(pooledConfig(16, 4), [](vm::Kernel &kernel,
                                     kern::Thread &drv) {
        struct Alloc
        {
            CpuId cpu;
            VAddr va;
        };
        std::vector<Alloc> allocs;
        std::vector<kern::Thread *> threads;
        for (CpuId id : {0u, 5u, 10u, 15u}) {
            threads.push_back(kernel.spawnThread(
                nullptr, "alloc" + std::to_string(id),
                [&kernel, &allocs, id](kern::Thread &self) {
                    const VAddr va = kernel.kmemAlloc(self, kPageSize);
                    ASSERT_NE(va, 0u);
                    allocs.push_back({id, va});
                    kernel.kmemFree(self, va, kPageSize);
                },
                static_cast<std::int64_t>(id)));
        }
        for (kern::Thread *t : threads)
            drv.join(*t);

        kern::Machine &m = kernel.machine();
        for (const Alloc &alloc : allocs) {
            EXPECT_EQ(m.poolOfKernelVpn(vaToVpn(alloc.va)),
                      static_cast<int>(m.poolOfCpu(alloc.cpu)))
                << "cpu " << alloc.cpu;
        }
    });
}

TEST(KernelPools, PoolLocalFreeShootsOnlyThePool)
{
    inKernel(pooledConfig(16, 4), [](vm::Kernel &kernel,
                                     kern::Thread &drv) {
        // Keep every CPU busy so any of them *could* be synchronized.
        bool stop = false;
        std::vector<kern::Thread *> spinners;
        for (CpuId id = 1; id < 16; ++id) {
            spinners.push_back(kernel.spawnThread(
                nullptr, "spin" + std::to_string(id),
                [&stop](kern::Thread &self) {
                    while (!stop)
                        self.cpu().advance(1 * kMsec);
                },
                static_cast<std::int64_t>(id)));
        }
        drv.sleep(10 * kMsec);

        kern::Thread *worker = kernel.spawnThread(
            nullptr, "pool-worker",
            [&kernel](kern::Thread &self) {
                kernel.machine().xpr().reset();
                const VAddr buf = kernel.kmemAlloc(self, kPageSize);
                ASSERT_TRUE(self.store32(buf, 1));
                kernel.kmemFree(self, buf, kPageSize);
            },
            0);
        drv.join(*worker);
        stop = true;
        for (kern::Thread *t : spinners)
            drv.join(*t);

        const xpr::RunAnalysis analysis =
            xpr::analyze(kernel.machine().xpr());
        ASSERT_GE(analysis.kernel_initiator.events, 1u);
        // Pool 0 holds CPUs 0-3; the initiator is CPU 0, so at most
        // three processors are shot at despite 15 busy ones.
        EXPECT_LE(analysis.kernel_initiator.procs.max(), 3.0);
    });
}

TEST(KernelPools, ConsistencyHeldWithinThePool)
{
    // A kernel buffer shared by two threads in the same pool: when one
    // frees it, the other must take a fault rather than read through a
    // stale entry.
    inKernel(pooledConfig(16, 4), [](vm::Kernel &kernel,
                                     kern::Thread &drv) {
        VAddr buf = 0;
        bool freed = false;
        kern::Thread *owner = kernel.spawnThread(
            nullptr, "owner",
            [&](kern::Thread &self) {
                buf = kernel.kmemAlloc(self, kPageSize);
                ASSERT_TRUE(self.store32(buf, 0x600d));
                self.sleep(40 * kMsec);
                kernel.kmemFree(self, buf, kPageSize);
                freed = true;
            },
            1);
        kern::Thread *peer = kernel.spawnThread(
            nullptr, "peer",
            [&](kern::Thread &self) {
                self.sleep(15 * kMsec); // Buffer exists and is hot.
                std::uint32_t value = 0;
                ASSERT_TRUE(self.load32(buf, &value));
                EXPECT_EQ(value, 0x600du);
                while (!freed)
                    self.cpu().advance(1 * kMsec);
                // After the free, the mapping is gone here too.
                EXPECT_FALSE(self.load32(buf, &value));
            },
            2); // Same pool as CPU 1 (pool 0 is CPUs 0-3).
        drv.join(*owner);
        drv.join(*peer);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    });
}

TEST(RelatedWork, ThompsonMipsConfiguration)
{
    // Section 10: Thompson et al. implemented TLB consistency on a
    // MIPS-based multiprocessor -- software-reloaded TLBs with
    // address-space tags and no flush on context switch. The extended
    // shootdown algorithm must stay correct on that hardware shape.
    hw::MachineConfig config;
    config.ncpus = 8;
    config.tlb_software_reload = true;
    config.tlb_asid_tags = true;
    setLogQuiet(true);
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 6, .warmup = 20 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    EXPECT_EQ(result.analysis.user_initiator.events, 1u);
    // Software reload means responders never stall: cheap responses.
    EXPECT_LT(result.analysis.responder.time_usec.mean(), 100.0);
}

TEST(Stress, AllFourApplicationsSequentiallyOnOneMachine)
{
    // The machine must be reusable across workloads: tasks torn down,
    // instrumentation reset, no state bleeding between runs.
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);

    {
        apps::MachBuild app({.jobs = 6, .concurrency = 3});
        app.execute(kernel);
        EXPECT_EQ(app.jobs_completed, 6u);
        EXPECT_EQ(kernel.tasks().size(), 0u);
    }
    {
        apps::Parthenon::Params params;
        params.runs = 1;
        apps::Parthenon app(params);
        const apps::WorkloadResult result = app.execute(kernel);
        // xpr was reset between runs: only this workload's events.
        EXPECT_LE(result.analysis.kernel_initiator.events, 10u);
    }
    {
        apps::Agora::Params params;
        params.runs = 2;
        params.regions = 1;
        apps::Agora app(params);
        app.execute(kernel);
    }
    {
        apps::Camelot app({.transactions = 20});
        const apps::WorkloadResult result = app.execute(kernel);
        EXPECT_GT(result.analysis.user_initiator.events, 0u);
    }
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST(KernelPools, TesterUnaffectedByPools)
{
    // User-pmap shootdowns are orthogonal to kernel pools.
    vm::Kernel kernel(pooledConfig(16, 4));
    apps::ConsistencyTester tester({.children = 9, .warmup = 20 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    EXPECT_EQ(result.analysis.user_initiator.procs.max(), 9.0);
}

} // namespace
} // namespace mach
