#include "vm/task.hh"

#include "vm/kernel.hh"

namespace mach::vm
{

std::atomic<std::uint64_t> Task::next_id_{1};

Task::Task(Kernel *kernel, std::string name)
    : kernel_(kernel), id_(next_id_.fetch_add(1, std::memory_order_relaxed)), name_(std::move(name)),
      map_(name_, kUserLo, kUserHi),
      pmap_(kernel->pmaps().createPmap())
{
}

Task::~Task() = default;

} // namespace mach::vm
