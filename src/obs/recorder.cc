#include "obs/recorder.hh"

#include <cstdio>
#include <utility>

namespace mach::obs
{

namespace
{

std::string g_process_file_tag;

/** "12345678" ticks (ns) -> "12.345" (µs with fixed 3-digit fraction). */
void
appendMicros(std::string &out, Tick ts)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ts / kUsec),
                  static_cast<unsigned long long>(ts % kUsec));
    out += buf;
}

void
appendU64(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
}

/** Escape for a JSON string (names here are tame, but be correct). */
void
appendEscaped(std::string &out, const char *s)
{
    for (; *s != '\0'; ++s) {
        switch (*s) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += *s;
        }
    }
}

} // namespace

std::string
suffixedPath(const std::string &path, const std::string &tag)
{
    if (tag.empty())
        return path;
    const auto dot = path.rfind('.');
    const auto slash = path.rfind('/');
    const bool has_ext =
        dot != std::string::npos &&
        (slash == std::string::npos || dot > slash);
    if (!has_ext)
        return path + "." + tag;
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

void
setProcessFileTag(const std::string &tag)
{
    g_process_file_tag = tag;
}

const std::string &
processFileTag()
{
    return g_process_file_tag;
}

Recorder::Recorder(Clock clock) : clock_(std::move(clock))
{
    tracks_.push_back("machine");
}

void
Recorder::enable()
{
    enabled_ = true;
    stats_only_ = false;
    ring_capacity_ = 0;
}

void
Recorder::enableRing(std::size_t capacity)
{
    enabled_ = true;
    stats_only_ = false;
    ring_capacity_ = capacity == 0 ? 1 : capacity;
}

void
Recorder::enableStats()
{
    enabled_ = true;
    stats_only_ = true;
    ring_capacity_ = 0;
}

void
Recorder::disable()
{
    enabled_ = false;
    stats_only_ = false;
}

TrackId
Recorder::defineTrack(const std::string &name)
{
    tracks_.push_back(name);
    return static_cast<TrackId>(tracks_.size() - 1);
}

void
Recorder::setCpuTracks(unsigned ncpus)
{
    cpu_track_base_ = static_cast<TrackId>(tracks_.size());
    for (unsigned i = 0; i < ncpus; ++i) {
        char name[16];
        std::snprintf(name, sizeof(name), "cpu%u", i);
        tracks_.push_back(name);
    }
}

void
Recorder::push(Event event)
{
    if (stats_only_)
        return;
    if (ring_capacity_ != 0 && events_.size() >= ring_capacity_) {
        events_.pop_front();
        ++dropped_;
    }
    events_.push_back(event);
}

void
Recorder::begin(TrackId track, const char *name, const char *category,
                Arg arg0, Arg arg1)
{
    push(Event{clock_(), 'B', track, name, category, arg0, arg1, nullptr});
}

void
Recorder::end(TrackId track, const char *name)
{
    push(Event{clock_(), 'E', track, name, nullptr, {}, {}, nullptr});
}

void
Recorder::instant(TrackId track, const char *name, const char *category,
                  Arg arg0, Arg arg1, const char *detail)
{
    push(Event{clock_(), 'i', track, name, category, arg0, arg1, detail});
}

void
Recorder::counter(TrackId track, const char *name, std::uint64_t value)
{
    push(Event{clock_(), 'C', track, name, nullptr,
               Arg{"value", value}, {}, nullptr});
}

std::string
Recorder::toJson() const
{
    std::string out;
    out.reserve(256 + events_.size() * 96);
    out += "{\"traceEvents\":[\n";

    // Metadata: one process, one named thread per track, sorted in
    // track order so Perfetto shows machine, cpu0..N, then threads.
    out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
           "\"args\":{\"name\":\"machsim\"}}";
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
        appendU64(out, i);
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        appendEscaped(out, tracks_[i].c_str());
        out += "\"}}";
        out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
        appendU64(out, i);
        out += ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":";
        appendU64(out, i);
        out += "}}";
    }
    if (dump_reason_ != nullptr) {
        out += ",\n{\"ph\":\"M\",\"pid\":1,\"name\":\"dump_reason\","
               "\"args\":{\"name\":\"";
        appendEscaped(out, dump_reason_);
        out += "\"}}";
    }
    if (dropped_ != 0) {
        out += ",\n{\"ph\":\"M\",\"pid\":1,\"name\":\"dropped_events\","
               "\"args\":{\"name\":\"";
        appendU64(out, dropped_);
        out += "\"}}";
    }

    // Spans still open at capture (idle loops parked at end of run) get
    // synthetic closes at the final timestamp so every 'B' has its 'E'.
    // In ring mode the ring may also hold orphaned 'E's whose 'B' was
    // evicted; those simply find an empty stack here and are skipped.
    std::vector<std::vector<const Event *>> open(tracks_.size());
    Tick last_ts = 0;
    for (const Event &e : events_) {
        if (e.ts > last_ts)
            last_ts = e.ts;
        if (e.track >= open.size())
            continue;
        if (e.phase == 'B') {
            open[e.track].push_back(&e);
        } else if (e.phase == 'E' && !open[e.track].empty()) {
            open[e.track].pop_back();
        }
    }

    auto emitEvent = [&out](const Event &e) {
        out += ",\n{\"ph\":\"";
        out += e.phase;
        out += "\",\"pid\":1,\"tid\":";
        appendU64(out, e.track);
        out += ",\"ts\":";
        appendMicros(out, e.ts);
        out += ",\"name\":\"";
        appendEscaped(out, e.name);
        out += "\"";
        if (e.category != nullptr) {
            out += ",\"cat\":\"";
            appendEscaped(out, e.category);
            out += "\"";
        }
        if (e.phase == 'i')
            out += ",\"s\":\"t\""; // thread-scoped instant
        if (e.arg0.key != nullptr || e.detail != nullptr) {
            out += ",\"args\":{";
            bool first = true;
            if (e.arg0.key != nullptr) {
                out += "\"";
                appendEscaped(out, e.arg0.key);
                out += "\":";
                appendU64(out, e.arg0.value);
                first = false;
            }
            if (e.arg1.key != nullptr) {
                if (!first)
                    out += ",";
                out += "\"";
                appendEscaped(out, e.arg1.key);
                out += "\":";
                appendU64(out, e.arg1.value);
                first = false;
            }
            if (e.detail != nullptr) {
                if (!first)
                    out += ",";
                out += "\"detail\":\"";
                appendEscaped(out, e.detail);
                out += "\"";
            }
            out += "}";
        }
        out += "}";
    };

    for (const Event &e : events_)
        emitEvent(e);
    for (std::size_t track = 0; track < open.size(); ++track) {
        // Close inner spans first (reverse stack order).
        for (auto it = open[track].rbegin(); it != open[track].rend();
             ++it) {
            emitEvent(Event{last_ts, 'E', static_cast<TrackId>(track),
                            (*it)->name, nullptr, {}, {}, nullptr});
        }
    }

    out += "\n]}\n";
    return out;
}

bool
Recorder::writeJsonFile(const std::string &path) const
{
    const std::string decorated = suffixedPath(path, g_process_file_tag);
    std::FILE *f = std::fopen(decorated.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = toJson();
    const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = std::fclose(f) == 0 && wrote == json.size();
    return ok;
}

bool
Recorder::dumpOnFailure(const char *reason)
{
    if (!enabled_ || dumped_ || dump_path_.empty())
        return false;
    dump_reason_ = reason;
    dumped_ = true;
    return writeJsonFile(dump_path_);
}

} // namespace mach::obs
