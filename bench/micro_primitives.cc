/**
 * @file
 * Micro benchmarks (google-benchmark) of the substrate primitives:
 * event queue throughput, fiber switching, TLB probes, page-table
 * walks, and whole tester runs. These measure *host* performance of
 * the simulator -- useful when deciding how large an experiment is
 * affordable -- not simulated time.
 */

#include <benchmark/benchmark.h>

#include "apps/consistency_tester.hh"
#include "hw/page_table.hh"
#include "hw/phys_mem.hh"
#include "hw/tlb.hh"
#include "sim/context.hh"
#include "vm/kernel.hh"

using namespace mach;

namespace
{

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    sim::EventQueue queue;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        queue.schedule(1, [&fired] { ++fired; });
        Tick when = 0;
        queue.popFront(&when)();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_FiberRoundTrip(benchmark::State &state)
{
    sim::Context ctx;
    // One fiber that sleeps in a loop; each iteration is a
    // scheduler-fiber-scheduler round trip.
    std::uint64_t rounds = 0;
    ctx.spawn("bench", [&] {
        for (;;) {
            ctx.sleep(1);
            ++rounds;
        }
    });
    for (auto _ : state)
        ctx.run(ctx.now() + 1);
    benchmark::DoNotOptimize(rounds);
    state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_FiberRoundTrip);

void
BM_TlbLookupHit(benchmark::State &state)
{
    hw::MachineConfig config;
    hw::PhysMem mem(64);
    hw::Tlb tlb(&config, &mem);
    tlb.insert(1, 5, 42, ProtReadWrite, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(1, 5, ProtRead, 0));
}
BENCHMARK(BM_TlbLookupHit);

void
BM_TlbLookupMissFullBuffer(benchmark::State &state)
{
    hw::MachineConfig config;
    hw::PhysMem mem(64);
    hw::Tlb tlb(&config, &mem);
    for (Vpn v = 0; v < config.tlb_entries; ++v)
        tlb.insert(1, v, v, ProtRead, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            tlb.lookup(1, 100000, ProtRead, 0));
}
BENCHMARK(BM_TlbLookupMissFullBuffer);

void
BM_PageTableWalk(benchmark::State &state)
{
    hw::PhysMem mem(256);
    hw::PageTable table(&mem);
    table.writePte(12345, hw::pte::make(17, ProtReadWrite));
    for (auto _ : state)
        benchmark::DoNotOptimize(table.walk(12345));
}
BENCHMARK(BM_PageTableWalk);

void
BM_PageTableWritePte(benchmark::State &state)
{
    hw::PhysMem mem(256);
    hw::PageTable table(&mem);
    Vpn vpn = 0;
    for (auto _ : state) {
        table.writePte(vpn % 1024, hw::pte::make(3, ProtRead));
        ++vpn;
    }
}
BENCHMARK(BM_PageTableWritePte);

void
BM_WholeTesterRun(benchmark::State &state)
{
    setLogQuiet(true);
    const unsigned children = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        hw::MachineConfig config;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = children, .warmup = 20 * kMsec});
        tester.execute(kernel);
        if (!tester.consistent())
            state.SkipWithError("inconsistency detected");
    }
}
BENCHMARK(BM_WholeTesterRun)->Arg(2)->Arg(8)->Arg(15)
    ->Unit(benchmark::kMillisecond);

void
BM_MachineBringup(benchmark::State &state)
{
    setLogQuiet(true);
    for (auto _ : state) {
        hw::MachineConfig config;
        config.ncpus = static_cast<unsigned>(state.range(0));
        vm::Kernel kernel(config);
        kernel.start();
        benchmark::DoNotOptimize(kernel.machine().ncpus());
    }
}
BENCHMARK(BM_MachineBringup)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
