/**
 * @file
 * Determinism guarantees: the whole point of the simulated substrate
 * is that every experiment replays bit-identically from its
 * configuration, so results in EXPERIMENTS.md are reproducible.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/camelot.hh"
#include "apps/consistency_tester.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

/** Serialize every xpr record of a run into a comparable string. */
std::string
fingerprint(const xpr::Buffer &buffer)
{
    std::ostringstream out;
    for (const xpr::Event &event : buffer.events()) {
        out << static_cast<int>(event.kind) << ':' << event.cpu << ':'
            << event.timestamp << ':' << event.kernel_pmap << ':'
            << event.pages << ':' << event.procs << ':'
            << event.elapsed << '\n';
    }
    return out.str();
}

TEST(Determinism, TesterRunsAreBitIdentical)
{
    setLogQuiet(true);
    std::string first;
    for (int round = 0; round < 2; ++round) {
        hw::MachineConfig config;
        config.seed = 0xd37e3;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 6, .warmup = 20 * kMsec});
        tester.execute(kernel);
        const std::string print = fingerprint(kernel.machine().xpr());
        ASSERT_FALSE(print.empty());
        if (round == 0)
            first = print;
        else
            EXPECT_EQ(print, first);
    }
}

TEST(Determinism, CamelotRunsAreBitIdentical)
{
    setLogQuiet(true);
    std::string first;
    Tick first_runtime = 0;
    for (int round = 0; round < 2; ++round) {
        hw::MachineConfig config;
        config.seed = 0xd37e4;
        vm::Kernel kernel(config);
        apps::Camelot app({.transactions = 40});
        const apps::WorkloadResult result = app.execute(kernel);
        const std::string print = fingerprint(kernel.machine().xpr());
        if (round == 0) {
            first = print;
            first_runtime = result.virtual_runtime;
        } else {
            EXPECT_EQ(print, first);
            EXPECT_EQ(result.virtual_runtime, first_runtime);
        }
    }
}

TEST(Determinism, DifferentSeedsDiffer)
{
    setLogQuiet(true);
    std::string prints[2];
    for (int i = 0; i < 2; ++i) {
        hw::MachineConfig config;
        config.seed = 0xd37e5 + i;
        vm::Kernel kernel(config);
        apps::Camelot app({.transactions = 40});
        app.execute(kernel);
        prints[i] = fingerprint(kernel.machine().xpr());
    }
    EXPECT_NE(prints[0], prints[1]);
}

} // namespace
} // namespace mach
