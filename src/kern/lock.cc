#include "kern/lock.hh"

#include "base/logging.hh"
#include "hw/bus.hh"
#include "kern/cpu.hh"
#include "kern/machine.hh"
#include "kern/sched.hh"
#include "kern/thread.hh"

namespace mach::kern
{

void
SpinLock::lock(Cpu &cpu)
{
    // The fixed-priority discipline of Section 4: a lock may only be
    // requested at or below its associated interrupt priority level.
    MACH_ASSERT(cpu.spl() <= level_);
    const hw::Spl saved = cpu.setSpl(level_);
    rawLock(cpu);
    saved_spl_ = saved;
}

void
SpinLock::unlock(Cpu &cpu)
{
    const hw::Spl saved = saved_spl_;
    rawUnlock(cpu);
    cpu.setSpl(saved);
}

void
SpinLock::rawLock(Cpu &cpu)
{
    MACH_ASSERT(holder_ != cpu.id()); // No recursive locking.
    cpu.advanceNoPoll(cpu.machine().cfg().lock_acquire_cost);
    if (holder_ >= 0) {
        ++contended_acquires;
        hw::Bus::User user(cpu.bus());
        while (holder_ >= 0)
            cpu.spinOnce();
    }
    holder_ = cpu.id();
    ++acquires;
}

void
SpinLock::rawUnlock(Cpu &cpu)
{
    MACH_ASSERT(heldBy(cpu));
    cpu.advanceNoPoll(cpu.machine().cfg().lock_release_cost);
    holder_ = -1;
}

bool
SpinLock::heldBy(const Cpu &cpu) const
{
    return holder_ == cpu.id();
}

void
Mutex::lock(Thread &thread)
{
    Machine &machine = thread.machine();
    thread.cpu().advanceNoPoll(machine.cfg().lock_acquire_cost);
    bool waited = false;
    while (holder_ != nullptr) {
        waited = true;
        waiters_.push_back(&thread);
        machine.sched().blockCurrent(thread.cpu());
    }
    holder_ = &thread;
    ++acquires;
    if (waited)
        ++contended_acquires;
}

void
Mutex::unlock(Thread &thread)
{
    MACH_ASSERT(holder_ == &thread);
    Machine &machine = thread.machine();
    thread.cpu().advanceNoPoll(machine.cfg().lock_release_cost);
    holder_ = nullptr;
    if (!waiters_.empty()) {
        Thread *next = waiters_.front();
        waiters_.pop_front();
        machine.sched().wakeup(*next);
    }
}

void
RwMutex::wakeAll(Thread &thread)
{
    Sched &sched = thread.machine().sched();
    while (!waiters_.empty()) {
        Thread *next = waiters_.front();
        waiters_.pop_front();
        sched.wakeup(*next);
    }
}

void
RwMutex::lockRead(Thread &thread)
{
    Machine &machine = thread.machine();
    thread.cpu().advanceNoPoll(machine.cfg().lock_acquire_cost);
    while (writer_ != nullptr || writers_waiting_ > 0) {
        waiters_.push_back(&thread);
        machine.sched().blockCurrent(thread.cpu());
    }
    ++readers_;
}

void
RwMutex::unlockRead(Thread &thread)
{
    MACH_ASSERT(readers_ > 0);
    thread.cpu().advanceNoPoll(thread.machine().cfg().lock_release_cost);
    --readers_;
    if (readers_ == 0)
        wakeAll(thread);
}

void
RwMutex::lockWrite(Thread &thread)
{
    Machine &machine = thread.machine();
    thread.cpu().advanceNoPoll(machine.cfg().lock_acquire_cost);
    ++writers_waiting_;
    while (writer_ != nullptr || readers_ > 0) {
        waiters_.push_back(&thread);
        machine.sched().blockCurrent(thread.cpu());
    }
    --writers_waiting_;
    writer_ = &thread;
}

void
RwMutex::unlockWrite(Thread &thread)
{
    MACH_ASSERT(writer_ == &thread);
    thread.cpu().advanceNoPoll(thread.machine().cfg().lock_release_cost);
    writer_ = nullptr;
    wakeAll(thread);
}

} // namespace mach::kern
