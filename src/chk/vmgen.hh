/**
 * @file
 * Property-based scenario generation: random-but-legal VM-op
 * sequences as checker scenarios.
 *
 * vmgenScenario() promotes the reference-model generator behind
 * tests/vm_fuzz_test.cc into a reusable library: a seeded, fully
 * deterministic sequence of allocate / write / read / protect / copy
 * / remap / deallocate operations (plus optional fork churn) runs on
 * one body thread against a host-side model of what the address space
 * must contain, while read-only toucher threads on the other CPUs
 * keep the task's pmap live so every reprotect is a real shootdown.
 *
 * The resulting Scenario is legal by construction under *any* delay
 * perturbation: the model is driven only by the body thread's own
 * serial op sequence and the touchers never write, so no property
 * depends on the schedule -- exactly what the explorer needs to
 * perturb freely. Generated scenarios are auto-enrolled in
 * builtinScenarios() and resolvable by name ("vmgen-<seed>",
 * "vmgen-<seed>x<nodes>", with a trailing "d" for the device-enabled
 * variant) like any hand-written scenario.
 *
 * The device-enabled variant (VmGenOptions::devices) adds DMA ops to
 * the mix: the machine gets one DMA device attached to the fuzz
 * task's pmap, and the op sequence interleaves DMA reads and writes
 * (dev/dma_device.hh) with the CPU-side ops. The model predicts them
 * with one wrinkle -- protection increases are repaired lazily by CPU
 * faults and devices cannot fault, so each legal DMA op is preceded
 * by a CPU touch of the page (the driver-side repair every real DMA
 * stack performs; docs/DEVICES.md). Illegal DMA ops (model rights
 * forbid the access) must be dropped as translation faults: the
 * revocation path from vmProtect/vmDeallocate through the device's
 * action queue to the IOTLB is what this fuzzes.
 */

#ifndef MACH_CHK_VMGEN_HH
#define MACH_CHK_VMGEN_HH

#include <cstdint>

#include "base/types.hh"
#include "chk/scenario.hh"

namespace mach::chk
{

/** Shape of one generated VM-op scenario. */
struct VmGenOptions
{
    /** Seed for both the op generator and the machine config. */
    std::uint64_t seed = 1;
    /** Ops in the generated sequence. */
    unsigned ops = 160;
    unsigned ncpus = 4;
    /** 1 = UMA; >1 adds the NUMA topology (ncpus spread evenly). */
    unsigned numa_nodes = 1;
    /** Mix fork/inherit/destroy churn into the sequence. */
    bool fork_churn = false;
    /** Attach one DMA device and mix DMA ops into the sequence. */
    bool devices = false;
    /** Liveness bound of the unperturbed run. */
    Tick bound = 800 * kMsec;
};

/** The generated scenario ("vmgen-<seed>", "vmgen-<seed>x<nodes>"). */
Scenario vmgenScenario(const VmGenOptions &opt);

/**
 * Parse a vmgen scenario name back into its options; returns false
 * when @p name is not of the vmgen-<seed>[x<nodes>][d] form. The
 * named scenarios always use the default op count and CPU shape, so a
 * name fully determines the scenario -- which is what lets corpus
 * entries and CLI flags refer to generated scenarios by name alone.
 */
bool parseVmgenName(const std::string &name, VmGenOptions *out);

} // namespace mach::chk

#endif // MACH_CHK_VMGEN_HH
