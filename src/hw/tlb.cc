#include "hw/tlb.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/recorder.hh"

namespace mach::hw
{

namespace
{

std::uint32_t
nextPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Tlb::Tlb(const MachineConfig *config, PhysMem *mem,
         unsigned entry_override)
    : config_(config), mem_(mem),
      entries_(entry_override != 0 ? entry_override
                                   : config->tlb_entries),
      assoc_(entry_override != 0 ? 0 : config->tlb_associativity)
{
    l0_size_ = std::min(config->tlb_l0_entries, kL0MaxEntries);
    for (L0Slot &slot : l0_)
        slot = {kNoL0Key, 0};
    if (setAssociative()) {
        MACH_ASSERT(entries_.size() % assoc_ == 0);
        set_victims_.assign(entries_.size() / assoc_, 0);
    } else {
        // 4x the entry count keeps the open-addressed index under 25%
        // occupancy right after a rebuild, so probe chains stay short.
        const std::uint32_t capacity = nextPow2(std::max(
            64u, 4 * static_cast<unsigned>(entries_.size())));
        index_.assign(capacity, kEmptySlot);
        index_mask_ = capacity - 1;
    }
}

std::uint64_t
Tlb::hashKey(SpaceId space, Vpn vpn)
{
    std::uint64_t k =
        (static_cast<std::uint64_t>(space) << 32) ^ vpn;
    k *= 0x9E3779B97F4A7C15ull;
    k ^= k >> 29;
    return k;
}

bool
Tlb::entryLive(const TlbEntry &entry) const
{
    return entry.valid && entry.gen == gen_ &&
           entry.space_gen == space_states_[entry.space_slot].flush_gen;
}

unsigned
Tlb::spaceLive(std::uint32_t slot) const
{
    const SpaceState &st = space_states_[slot];
    return st.seen_gen == gen_ ? st.live : 0;
}

Tlb::SpaceState &
Tlb::touchSpace(std::uint32_t slot)
{
    SpaceState &st = space_states_[slot];
    if (st.seen_gen != gen_) {
        // The whole buffer was flushed since this count was maintained;
        // every entry it counted is dead. Normalize lazily.
        st.seen_gen = gen_;
        st.live = 0;
    }
    return st;
}

std::uint32_t
Tlb::spaceSlot(SpaceId space)
{
    const auto [it, inserted] = space_index_.try_emplace(
        space, static_cast<std::uint32_t>(space_states_.size()));
    if (inserted)
        space_states_.emplace_back();
    return it->second;
}

void
Tlb::l0Fill(std::uint64_t key, std::uint32_t entry_index)
{
    if (l0_size_ == 0)
        return;
    l0_[l0_fill_] = {key, entry_index};
    if (++l0_fill_ >= l0_size_)
        l0_fill_ = 0;
}

void
Tlb::l0ClearKey(std::uint64_t key)
{
    if (config_->chk_skip_l0_invalidate)
        return;
    for (unsigned i = 0; i < l0_size_; ++i) {
        if (l0_[i].key == key)
            l0_[i].key = kNoL0Key;
    }
}

void
Tlb::l0ClearSpace(SpaceId space)
{
    if (config_->chk_skip_l0_invalidate)
        return;
    for (unsigned i = 0; i < l0_size_; ++i) {
        if ((l0_[i].key >> 32) == space)
            l0_[i].key = kNoL0Key;
    }
}

void
Tlb::l0ClearAll()
{
    if (config_->chk_skip_l0_invalidate)
        return;
    for (unsigned i = 0; i < l0_size_; ++i)
        l0_[i].key = kNoL0Key;
}

TlbEntry *
Tlb::find(SpaceId space, Vpn vpn, bool fill_l0)
{
    // L0 fast path: a populated slot is live by invariant (every
    // retire/flush path clears the matching slots), so a key match is
    // the whole probe -- no hashing, no generation checks.
    const std::uint64_t key = l0Key(space, vpn);
    for (unsigned i = 0; i < l0_size_; ++i) {
        if (l0_[i].key == key) {
            ++l0_hits;
            return &entries_[l0_[i].entry];
        }
    }
    // Negative fast path: a key that just missed cannot have appeared
    // since (only fillEntry adds live entries, and it clears the memo).
    // Covers the second probe of every lookup-miss + insert pair.
    if (key == last_miss_key_)
        return nullptr;
    if (l0_size_ != 0)
        ++l0_misses;
    if (live_count_ == 0) {
        last_miss_key_ = key;
        return nullptr;
    }
    if (setAssociative()) {
        const unsigned ways = assoc_;
        const std::size_t set =
            hashKey(space, vpn) % set_victims_.size();
        TlbEntry *base = &entries_[set * ways];
        for (unsigned way = 0; way < ways; ++way) {
            TlbEntry &entry = base[way];
            if (entryLive(entry) && entry.space == space &&
                entry.vpn == vpn) {
                if (fill_l0) {
                    l0Fill(key, static_cast<std::uint32_t>(
                                    &entry - entries_.data()));
                }
                return &entry;
            }
        }
        last_miss_key_ = key;
        return nullptr;
    }
    std::uint32_t slot =
        static_cast<std::uint32_t>(hashKey(space, vpn)) & index_mask_;
    for (;; slot = (slot + 1) & index_mask_) {
        const std::uint32_t ei = index_[slot];
        if (ei == kEmptySlot) {
            last_miss_key_ = key;
            return nullptr;
        }
        TlbEntry &entry = entries_[ei];
        // Stale slots (retired, evicted, or epoch-flushed entries)
        // stay in the chain as tombstones; probe past them.
        if (entryLive(entry) && entry.space == space &&
            entry.vpn == vpn) {
            if (fill_l0)
                l0Fill(key, ei);
            return &entry;
        }
    }
}

const TlbEntry *
Tlb::find(SpaceId space, Vpn vpn) const
{
    return const_cast<Tlb *>(this)->find(space, vpn);
}

void
Tlb::indexInsert(std::uint32_t entry_index)
{
    const TlbEntry &entry = entries_[entry_index];
    std::uint32_t slot =
        static_cast<std::uint32_t>(hashKey(entry.space, entry.vpn)) &
        index_mask_;
    for (;; slot = (slot + 1) & index_mask_) {
        const std::uint32_t ei = index_[slot];
        if (ei == kEmptySlot) {
            index_[slot] = entry_index;
            // Claiming a virgin slot shrinks the empty margin that
            // terminates probes; rebuild before chains degenerate.
            // Half occupancy keeps unsuccessful probes (the common
            // case under churn: every miss walks to an empty slot)
            // to a couple of steps, and a rebuild costs only a few
            // ns amortized per insert at this trip point.
            if (++index_used_ * 2 > index_.size())
                rebuildIndex();
            return;
        }
        if (!entryLive(entries_[ei])) {
            // Recycle a tombstone in this key's own probe chain; the
            // chain stays contiguous for every key probing through it.
            index_[slot] = entry_index;
            return;
        }
        // A live entry's slot: the caller guarantees our key is not
        // cached, so this is some other key. Keep probing.
    }
}

void
Tlb::rebuildIndex()
{
    index_.assign(index_.size(), kEmptySlot);
    index_used_ = 0;
    for (std::uint32_t ei = 0; ei < entries_.size(); ++ei) {
        if (!entryLive(entries_[ei]))
            continue;
        std::uint32_t slot = static_cast<std::uint32_t>(hashKey(
                                 entries_[ei].space,
                                 entries_[ei].vpn)) &
                             index_mask_;
        while (index_[slot] != kEmptySlot)
            slot = (slot + 1) & index_mask_;
        index_[slot] = ei;
        ++index_used_;
    }
}

void
Tlb::retireEntry(TlbEntry &entry)
{
    if (entryLive(entry)) {
        SpaceState &st = touchSpace(entry.space_slot);
        MACH_ASSERT(st.live > 0);
        MACH_ASSERT(live_count_ > 0);
        --st.live;
        --live_count_;
    } else {
        // Only the planted chk_skip_l0_invalidate bug can route a
        // retire to an entry that already left the live set (a stale
        // L0 slot serving a dead entry to find()); the liveness
        // accounting must not double-decrement for it. With L0
        // maintenance intact every caller holds a live entry.
        MACH_ASSERT(config_->chk_skip_l0_invalidate);
    }
    entry.valid = false;
    // Single chokepoint for page invalidations, range invalidations,
    // interlocked-writeback retirements, and insert evictions: the L0
    // must never serve an entry that left the live set.
    l0ClearKey(l0Key(entry.space, entry.vpn));
}

void
Tlb::fillEntry(TlbEntry &entry, SpaceId space, Vpn vpn, Pfn pfn,
               Prot prot, bool mod)
{
    const std::uint32_t slot = spaceSlot(space);
    SpaceState &st = touchSpace(slot);
    entry.valid = true;
    entry.space = space;
    entry.vpn = vpn;
    entry.pfn = pfn;
    entry.prot = prot;
    entry.ref = true;
    entry.mod = mod;
    entry.gen = gen_;
    entry.space_gen = st.flush_gen;
    entry.space_slot = slot;
    ++st.live;
    ++live_count_;
    const std::uint32_t entry_index =
        static_cast<std::uint32_t>(&entry - entries_.data());
    if (!setAssociative())
        indexInsert(entry_index);
    l0Fill(l0Key(space, vpn), entry_index);
    // The only place a missing key can become live: drop the memo.
    last_miss_key_ = kNoL0Key;
}

TlbLookup
Tlb::lookup(SpaceId space, Vpn vpn, Prot want, PAddr pte_addr)
{
    TlbLookup result;
    TlbEntry *entry = find(space, vpn);
    if (!entry) {
        ++misses;
        return result;
    }

    ++hits;
    result.hit = true;
    result.pfn = entry->pfn;
    result.prot_ok = protAllows(entry->prot, want);
    if (!result.prot_ok) {
        if (!entryLive(*entry)) {
            // A populated L0 slot over a dead entry is reachable only
            // when the planted bug suppressed the L0 maintenance. When
            // the stale rights also deny the access, report a miss so
            // the reload path re-walks and refreshes this entry with
            // the current PTE image -- otherwise the faulting access
            // retries against the same stale rights forever. (When the
            // stale rights suffice, the entry is served as-is: that
            // stale window is exactly the hazard the checker hunts.)
            MACH_ASSERT(config_->chk_skip_l0_invalidate);
            result.hit = false;
        }
        return result;
    }

    // Hardware maintenance of reference/modify bits. On the first write
    // through a cached entry the baseline TLB writes its image of the
    // PTE back to memory -- blindly, without revalidating it against the
    // current page-table contents. This is the writeback hazard of
    // Section 3: if a pmap update is in flight and the responder has not
    // been stalled, this store can clobber the new PTE.
    const bool write = protAllows(want, ProtWrite);
    entry->ref = true;
    if (write && !entry->mod) {
        if (config_->tlb_interlocked_refmod && pte_addr != 0) {
            // MC88200-style interlocked update: re-read the PTE, check
            // that the mapping is still valid (and still writable --
            // "the read data must be checked in all cases for mapping
            // validity"), and OR the bits in rather than overwriting.
            const std::uint32_t current = mem_->read32(pte_addr);
            if (!pte::valid(current) || !pte::writable(current) ||
                pte::pfn(current) != entry->pfn) {
                // The mapping changed underneath the cached entry: the
                // access must fault instead of completing.
                retireEntry(*entry);
                result.hit = false;
                result.prot_ok = false;
                return result;
            }
            mem_->write32(pte_addr,
                          current | pte::kRef | pte::kMod);
            entry->mod = true;
            ++writebacks;
            result.did_writeback = true;
        } else {
            entry->mod = true;
            if (!config_->tlb_no_refmod_writeback && pte_addr != 0) {
                mem_->write32(pte_addr,
                              pte::make(entry->pfn, entry->prot,
                                        entry->ref, entry->mod));
                ++writebacks;
                result.did_writeback = true;
            }
        }
    }
    return result;
}

void
Tlb::insert(SpaceId space, Vpn vpn, Pfn pfn, Prot prot, bool mod)
{
    TlbEntry *entry = find(space, vpn);
    if (entry) {
        // Refresh in place; liveness bookkeeping is already counted.
        entry->pfn = pfn;
        entry->prot = prot;
        entry->ref = true;
        entry->mod = mod;
        return;
    }
    if (setAssociative()) {
        const unsigned ways = assoc_;
        const std::size_t set =
            hashKey(space, vpn) % set_victims_.size();
        entry = &entries_[set * ways + set_victims_[set]];
        set_victims_[set] = (set_victims_[set] + 1) % ways;
    } else {
        // Blind global round-robin, exactly as the original flat
        // Multimax model: the victim cursor advances whether or not
        // the victim slot held a live entry.
        entry = &entries_[next_victim_];
        next_victim_ = (next_victim_ + 1) % entries_.size();
    }
    if (entryLive(*entry))
        retireEntry(*entry);
    fillEntry(*entry, space, vpn, pfn, prot, mod);
}

void
Tlb::invalidatePage(SpaceId space, Vpn vpn)
{
    if (TlbEntry *entry = find(space, vpn, /*fill_l0=*/false)) {
        retireEntry(*entry);
        ++single_invalidates;
    }
}

void
Tlb::invalidateRange(SpaceId space, Vpn start, Vpn end)
{
    if (obs_ != nullptr && obs_->enabled()) {
        obs_->instant(obs_track_, "tlb.invalidate_range", "tlb",
                      obs::Arg{"npages", end - start});
    }
    if (live_count_ == 0)
        return;
    if (static_cast<std::uint64_t>(end) - start >= entries_.size()) {
        // Range as wide as the buffer (virtual-cache directory sweeps,
        // span invalidations): one pass over the array beats probing
        // every vpn.
        for (auto &entry : entries_) {
            if (entryLive(entry) && entry.space == space &&
                entry.vpn >= start && entry.vpn < end) {
                retireEntry(entry);
                ++single_invalidates;
            }
        }
        return;
    }
    for (Vpn vpn = start; vpn < end; ++vpn)
        invalidatePage(space, vpn);
}

void
Tlb::flushSpace(SpaceId space)
{
    if (obs_ != nullptr && obs_->enabled()) {
        obs_->instant(obs_track_, "tlb.flush_space", "tlb",
                      obs::Arg{"space", space});
    }
    ++flushes;
    const auto it = space_index_.find(space);
    if (it == space_index_.end())
        return;
    SpaceState &st = touchSpace(it->second);
    MACH_ASSERT(live_count_ >= st.live);
    const unsigned died = st.live;
    live_count_ -= st.live;
    st.live = 0;
    // Entries filled under the old space generation are now dead; no
    // scan needed. Any lazily deferred flush is subsumed by this one.
    ++st.flush_gen;
    st.deferred = false;
    l0ClearSpace(space);
    // A bulk flush turns a big slice of the index into tombstones at
    // once; every later miss would probe through them until the next
    // occupancy-triggered rebuild. Rebuilding now is cheaper than the
    // chains (host-side policy only; pure simulated state is above).
    if (!setAssociative() && died * 8 >= entries_.size())
        rebuildIndex();
}

void
Tlb::flushAll()
{
    if (obs_ != nullptr && obs_->enabled()) {
        obs_->instant(obs_track_, "tlb.flush_all", "tlb",
                      obs::Arg{"live", live_count_});
    }
    ++flushes;
    ++full_flushes;
    // One generation bump kills every entry; per-space counts are
    // normalized lazily the next time each space is touched.
    ++gen_;
    live_count_ = 0;
    l0ClearAll();
    // Every index slot is now a tombstone; empty the index so misses
    // terminate on first probe instead of walking dead chains.
    if (!setAssociative()) {
        index_.assign(index_.size(), kEmptySlot);
        index_used_ = 0;
    }
}

void
Tlb::deferFlush(SpaceId space)
{
    space_states_[spaceSlot(space)].deferred = true;
}

bool
Tlb::consumeDeferredFlush(SpaceId space)
{
    const auto it = space_index_.find(space);
    if (it == space_index_.end() ||
        !space_states_[it->second].deferred)
        return false;
    // flushSpace clears the deferred flag itself.
    flushSpace(space);
    return true;
}

bool
Tlb::hasDeferredFlush(SpaceId space) const
{
    const auto it = space_index_.find(space);
    return it != space_index_.end() &&
           space_states_[it->second].deferred;
}

bool
Tlb::cachesSpace(SpaceId space) const
{
    const auto it = space_index_.find(space);
    if (it == space_index_.end())
        return false;
    return spaceLive(it->second) > 0;
}

bool
Tlb::cachesMapping(SpaceId space, Vpn vpn, Prot prot) const
{
    const TlbEntry *entry = find(space, vpn);
    return entry && protAllows(entry->prot, prot);
}

const std::vector<TlbEntry> &
Tlb::entries() const
{
    // Reconcile the valid bits with the generation tags so white-box
    // inspectors (audits, tests) see the same array an eager-flush
    // implementation would have produced. Cold path only.
    auto *self = const_cast<Tlb *>(this);
    for (TlbEntry &entry : self->entries_) {
        if (entry.valid && !entryLive(entry))
            entry.valid = false;
    }
    return entries_;
}

std::vector<TlbEntry>
Tlb::l0Translations() const
{
    std::vector<TlbEntry> out;
    for (unsigned i = 0; i < l0_size_; ++i) {
        if (l0_[i].key == kNoL0Key)
            continue;
        // Exactly what an L0 hit on this key would serve: the slot's
        // key with the backing entry's translation, unconditionally
        // valid (the L0 never revalidates).
        TlbEntry entry = entries_[l0_[i].entry];
        entry.valid = true;
        entry.space = static_cast<SpaceId>(l0_[i].key >> 32);
        entry.vpn = static_cast<Vpn>(l0_[i].key & 0xffffffffu);
        out.push_back(entry);
    }
    return out;
}

} // namespace mach::hw
