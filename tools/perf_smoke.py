#!/usr/bin/env python3
"""Perf smoke gate: fail CI when the hot paths regress badly.

Compares a freshly generated BENCH_host_perf.json against the baseline
committed at the repo root. Only the steadiest metrics are gated -- raw
event dispatch throughput, TLB lookup latency, and the end-to-end
simulation rates of the shootdown storm and the Section 5.2 app suite
(the two paths the shootdown-policy hooks sit on) -- and only with a
generous tolerance (default 25%), because shared CI runners are noisy.
The remaining benchmarks are informational; their history lives in the
uploaded BENCH_host_perf artifacts.

Usage: perf_smoke.py <committed.json> <fresh.json> [--tolerance 1.25]
Exit status 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


# (benchmark, metric, direction). "higher" means bigger is better.
GATES = [
    ("event_queue", "events_per_sec", "higher"),
    ("tlb_churn", "tlb_lookup_ns", "lower"),
    ("shootdown_storm", "sim_us_per_host_ms", "higher"),
    ("app_suite", "sim_us_per_host_ms", "higher"),
]


def load(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    return doc["results"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed", help="baseline BENCH_host_perf.json")
    parser.add_argument("fresh", help="just-measured BENCH_host_perf.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.25,
        help="allowed regression factor (default 1.25 = 25%%)",
    )
    args = parser.parse_args()

    try:
        committed = load(args.committed)
        fresh = load(args.fresh)
    except (OSError, ValueError, KeyError) as err:
        print(f"perf_smoke: cannot read inputs: {err}", file=sys.stderr)
        return 2

    failed = False
    for bench, metric, direction in GATES:
        try:
            base = committed[bench][metric]
            now = fresh[bench][metric]
        except KeyError:
            print(f"perf_smoke: {bench}.{metric} missing", file=sys.stderr)
            failed = True
            continue
        if direction == "higher":
            bound = base / args.tolerance
            ok = now >= bound
            verdict = f"floor {bound:.3f}"
        else:
            bound = base * args.tolerance
            ok = now <= bound
            verdict = f"ceiling {bound:.3f}"
        status = "ok" if ok else "REGRESSED"
        print(
            f"perf_smoke: {bench}.{metric}: baseline {base:.3f}, "
            f"measured {now:.3f} ({verdict}) ... {status}"
        )
        failed = failed or not ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
