#include "chk/scenario.hh"

#include <cstdio>
#include <utility>
#include <vector>

#include "chk/vmgen.hh"
#include "dev/dma_device.hh"
#include "kern/cpu.hh"
#include "kern/thread.hh"
#include "pmap/policy.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"
#include "vm/task.hh"

namespace mach::chk
{

namespace
{

void
failPredicate(ScenarioState *state, std::string why)
{
    if (state->predicate_ok) {
        state->predicate_ok = false;
        state->note = std::move(why);
    }
}

void
failCoverage(ScenarioState *state, std::string why)
{
    if (state->coverage_ok) {
        state->coverage_ok = false;
        if (state->note.empty())
            state->note = std::move(why);
    }
}

void
finish(vm::Kernel &kernel, ScenarioState *state)
{
    state->finished = true;
    kernel.machine().ctx().requestStop();
}

/**
 * One writer child: hammers its page with counter increments while
 * the page is writable and falls back to reads while it is not. A
 * write that succeeds lands at the access-return instant, so any
 * counter movement observed strictly after a protection revocation
 * completed went through a stale translation.
 */
kern::Thread::Body
writerChild(vm::Kernel *kp, VAddr va, const bool *stop, Tick gap,
            Tick masked_section)
{
    return [kp, va, stop, gap, masked_section](kern::Thread &self) {
        vm::Kernel &kernel = *kp;
        std::uint32_t n = 0;
        while (!*stop) {
            kern::AccessResult r = self.access(va, ProtWrite);
            if (r.ok)
                kernel.machine().mem().write32(r.paddr, ++n);
            else
                self.access(va, ProtRead);
            if (masked_section != 0)
                kernel.kernelSection(self, masked_section);
            self.cpu().advance(gap);
        }
    };
}

/**
 * The revoke-and-watch step shared by every storm: reprotect
 * [base + page*kPageSize) read-only, snapshot the writer counters,
 * wait, snapshot again. Counters may not move while revoked.
 */
void
watchRevoked(vm::Kernel &kernel, kern::Thread &self, vm::Task &task,
             VAddr base, unsigned pages, Tick settle,
             ScenarioState *state, const char *who, unsigned round)
{
    if (!kernel.vmProtect(self, task, base, pages * kPageSize,
                          ProtRead)) {
        failPredicate(state, "vmProtect(read-only) failed");
        return;
    }
    std::vector<std::uint32_t> before(pages, 0);
    std::vector<std::uint32_t> after(pages, 0);
    for (unsigned i = 0; i < pages; ++i)
        kernel.vmRead(self, task, base + i * kPageSize, &before[i], 4);
    self.sleep(settle);
    for (unsigned i = 0; i < pages; ++i)
        kernel.vmRead(self, task, base + i * kPageSize, &after[i], 4);
    for (unsigned i = 0; i < pages; ++i) {
        if (after[i] != before[i]) {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "%s round %u: page %u counter moved "
                          "%u -> %u through a revoked mapping",
                          who, round, i, before[i], after[i]);
            failPredicate(state, msg);
        }
    }
    if (!kernel.vmProtect(self, task, base, pages * kPageSize,
                          ProtReadWrite))
        failPredicate(state, "vmProtect(restore) failed");
}

/**
 * The generic storm: @p children writer threads on CPUs 1..children,
 * a driver on CPU 0 revoking and restoring write access for
 * @p rounds rounds with the watch predicate armed. With
 * @p masked_section nonzero the writers interleave interrupt-masked
 * kernel sections between accesses.
 */
/** Extra scenario-specific coverage run right before finish(). */
using Coverage = std::function<void(vm::Kernel &, ScenarioState *)>;

Scenario::Launch
stormLaunch(unsigned children, unsigned rounds, Tick warmup,
            Tick settle, Tick masked_section = 0,
            Coverage extra = {})
{
    return [=](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state, children, rounds, warmup, settle,
             masked_section, extra](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("chk-storm");
                VAddr base = 0;
                if (!kernel.vmAllocate(drv, *task, &base,
                                       children * kPageSize, true)) {
                    failPredicate(state, "vmAllocate failed");
                    finish(kernel, state);
                    return;
                }
                bool stop = false;
                const unsigned ncpus = kernel.machine().ncpus();
                std::vector<kern::Thread *> kids;
                for (unsigned i = 0; i < children; ++i) {
                    kids.push_back(kernel.spawnThread(
                        task, "chk-kid",
                        writerChild(kp, base + i * kPageSize, &stop,
                                    250 * kUsec, masked_section),
                        1 + static_cast<std::int64_t>(
                                i % (ncpus - 1))));
                }
                drv.sleep(warmup);
                for (unsigned round = 0; round < rounds; ++round) {
                    watchRevoked(kernel, drv, *task, base, children,
                                 settle, state, "storm", round);
                    drv.sleep(settle);
                }
                stop = true;
                for (kern::Thread *t : kids)
                    drv.join(*t);
                if (kernel.machine().cfg().consistency_strategy ==
                        hw::ConsistencyStrategy::Shootdown &&
                    kernel.pmaps().shoot().initiated == 0)
                    failCoverage(state, "storm: no shootdown ran");
                if (extra)
                    extra(kernel, state);
                finish(kernel, state);
            },
            0);
    };
}

/**
 * Two initiators reprotecting different pages of the same pmap
 * concurrently, each with its own writer to watch. Exercises the
 * initiator-waits-while-another-initiates interleavings and the
 * respond-while-spinning path of Section 4.
 */
Scenario::Launch
concurrentInitiatorsLaunch(unsigned initiators, unsigned rounds)
{
    return [=](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state, initiators, rounds](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("chk-conc");
                VAddr base = 0;
                if (!kernel.vmAllocate(drv, *task, &base,
                                       initiators * kPageSize, true)) {
                    failPredicate(state, "vmAllocate failed");
                    finish(kernel, state);
                    return;
                }
                bool stop = false;
                std::vector<kern::Thread *> all;
                for (unsigned i = 0; i < initiators; ++i) {
                    all.push_back(kernel.spawnThread(
                        task, "chk-kid",
                        writerChild(kp, base + i * kPageSize, &stop,
                                    250 * kUsec, 0),
                        1 + static_cast<std::int64_t>(i)));
                }
                drv.sleep(2 * kMsec);
                for (unsigned i = 0; i < initiators; ++i) {
                    const VAddr page = base + i * kPageSize;
                    all.push_back(kernel.spawnThread(
                        nullptr, "chk-init",
                        [kp, state, task, page, rounds,
                         i](kern::Thread &self) {
                            vm::Kernel &kernel = *kp;
                            for (unsigned r = 0; r < rounds; ++r) {
                                watchRevoked(kernel, self, *task, page,
                                             1, kMsec, state,
                                             i == 0 ? "init0"
                                                    : "init1",
                                             r);
                                self.sleep(kMsec);
                            }
                        },
                        1 + static_cast<std::int64_t>(initiators + i)));
                }
                // Join initiators first, then release the writers.
                for (std::size_t i = initiators; i < all.size(); ++i)
                    drv.join(*all[i]);
                stop = true;
                for (unsigned i = 0; i < initiators; ++i)
                    drv.join(*all[i]);
                if (kernel.pmaps().shoot().initiated <
                    rounds * initiators / 2)
                    failCoverage(state,
                                 "concurrent: too few shootdowns");
                finish(kernel, state);
            },
            0);
    };
}

/**
 * Idle-drain race: kernel workers touch kmem pages on CPUs 1..k and
 * exit, parking those CPUs in the idle loop with kernel translations
 * still cached. The driver then frees the pages -- queueing actions
 * at the idle CPUs without interrupts (the Section 4 idle
 * optimization) -- and wakes the CPUs so the idle-exit path must
 * drain before any kernel translation is used.
 */
Scenario::Launch
idleDrainLaunch(unsigned k)
{
    return [=](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state, k](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                std::vector<VAddr> vas(k, 0);
                std::vector<kern::Thread *> workers;
                for (unsigned i = 0; i < k; ++i) {
                    workers.push_back(kernel.spawnThread(
                        nullptr, "chk-kw",
                        [kp, &vas, i](kern::Thread &self) {
                            vm::Kernel &kernel = *kp;
                            vas[i] =
                                kernel.kmemAlloc(self, kPageSize);
                            if (vas[i] == 0)
                                return;
                            for (unsigned j = 0; j < 8; ++j) {
                                self.store32(vas[i], j);
                                self.cpu().advance(100 * kUsec);
                            }
                        },
                        1 + static_cast<std::int64_t>(i)));
                }
                for (kern::Thread *w : workers)
                    drv.join(*w);
                drv.sleep(2 * kMsec); // let the worker CPUs park idle
                const std::uint64_t drains_before =
                    kernel.pmaps().shoot().idle_drains;
                for (unsigned i = 0; i < k; ++i) {
                    if (vas[i] != 0)
                        kernel.kmemFree(drv, vas[i], kPageSize);
                }
                // Wake each parked CPU with fresh kernel work that
                // itself touches kmem right after the idle exit.
                std::vector<kern::Thread *> wakers;
                for (unsigned i = 0; i < k; ++i) {
                    wakers.push_back(kernel.spawnThread(
                        nullptr, "chk-wake",
                        [kp](kern::Thread &self) {
                            vm::Kernel &kernel = *kp;
                            VAddr va =
                                kernel.kmemAlloc(self, kPageSize);
                            if (va == 0)
                                return;
                            self.store32(va, 1);
                            kernel.kmemFree(self, va, kPageSize);
                        },
                        1 + static_cast<std::int64_t>(i)));
                }
                for (kern::Thread *w : wakers)
                    drv.join(*w);
                if (kernel.pmaps().shoot().idle_drains ==
                    drains_before)
                    failCoverage(state,
                                 "idle-drain: no idle drain fired");
                finish(kernel, state);
            },
            0);
    };
}

/**
 * Action-queue overflow: with a 2-entry queue, one worker caches
 * several distinct kernel pages and parks idle; the driver then frees
 * them one by one, overflowing the idle CPU's queue so the eventual
 * idle-exit drain must fall back to a full TLB flush.
 */
Scenario::Launch
overflowLaunch(unsigned pages)
{
    return [=](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state, pages](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                std::vector<VAddr> vas(pages, 0);
                kern::Thread *worker = kernel.spawnThread(
                    nullptr, "chk-kw",
                    [kp, &vas, pages](kern::Thread &self) {
                        vm::Kernel &kernel = *kp;
                        for (unsigned i = 0; i < pages; ++i) {
                            vas[i] =
                                kernel.kmemAlloc(self, kPageSize);
                            if (vas[i] != 0)
                                self.store32(vas[i], i);
                        }
                        self.cpu().advance(200 * kUsec);
                    },
                    1);
                drv.join(*worker);
                drv.sleep(2 * kMsec); // park CPU 1 in the idle loop
                const std::uint64_t overflows_before =
                    kernel.pmaps().shoot().queue_overflows;
                for (unsigned i = 0; i < pages; ++i) {
                    if (vas[i] != 0)
                        kernel.kmemFree(drv, vas[i], kPageSize);
                }
                kern::Thread *waker = kernel.spawnThread(
                    nullptr, "chk-wake",
                    [kp](kern::Thread &self) {
                        vm::Kernel &kernel = *kp;
                        VAddr va = kernel.kmemAlloc(self, kPageSize);
                        if (va != 0) {
                            self.store32(va, 1);
                            kernel.kmemFree(self, va, kPageSize);
                        }
                    },
                    1);
                drv.join(*waker);
                if (kernel.pmaps().shoot().queue_overflows ==
                    overflows_before)
                    failCoverage(state,
                                 "overflow: queue never overflowed");
                finish(kernel, state);
            },
            0);
    };
}

hw::MachineConfig
smallConfig(unsigned ncpus = 6)
{
    hw::MachineConfig config;
    config.ncpus = ncpus;
    config.seed = 0x5eed5eedull;
    return config;
}

/** A two-node machine small enough for the explorer to grind on. */
hw::MachineConfig
numaConfig(unsigned ncpus = 8, unsigned nodes = 2)
{
    hw::MachineConfig config = smallConfig(ncpus);
    config.numa_nodes = nodes;
    return config;
}

/**
 * Migration-during-shootdown: one page hammered by a writer on each
 * node while the driver revokes and restores write access. Every
 * restore refaults both writers, so one of them always counts a
 * remote fault; at the migrate threshold the page is stolen
 * (pageProtect shootdown + copy) mid-storm, racing the driver's own
 * reprotect shootdowns -- the stale-translation hazard the oracle
 * audits.
 */
Scenario::Launch
numaMigrateLaunch(unsigned rounds)
{
    return [=](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state, rounds](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("chk-migrate");
                VAddr base = 0;
                if (!kernel.vmAllocate(drv, *task, &base, kPageSize,
                                       true)) {
                    failPredicate(state, "vmAllocate failed");
                    finish(kernel, state);
                    return;
                }
                bool stop = false;
                const unsigned ncpus = kernel.machine().ncpus();
                // One writer per node, both on the same page: the
                // frame lands on whichever node faults first, so the
                // other writer's refaults are remote.
                kern::Thread *near = kernel.spawnThread(
                    task, "chk-kid",
                    writerChild(kp, base, &stop, 250 * kUsec, 0), 1);
                kern::Thread *far = kernel.spawnThread(
                    task, "chk-kid",
                    writerChild(kp, base, &stop, 250 * kUsec, 0),
                    static_cast<std::int64_t>(ncpus - 1));
                drv.sleep(4 * kMsec);
                for (unsigned round = 0; round < rounds; ++round) {
                    watchRevoked(kernel, drv, *task, base, 1, 2 * kMsec,
                                 state, "migrate", round);
                    drv.sleep(2 * kMsec);
                }
                stop = true;
                drv.join(*near);
                drv.join(*far);
                if (kernel.page_migrations == 0)
                    failCoverage(state, "migrate: no page migrated");
                finish(kernel, state);
            },
            0);
    };
}

Scenario
storm(std::string name, std::string summary, hw::MachineConfig config,
      Tick bound = 400 * kMsec)
{
    Scenario s;
    s.name = std::move(name);
    s.summary = std::move(summary);
    s.config = config;
    s.bound = bound;
    s.launch = stormLaunch(3, 3, 4 * kMsec, 2 * kMsec);
    return s;
}

/** A small tagged-TLB machine running the LazyAsid policy. */
hw::MachineConfig
lazyAsidConfig()
{
    hw::MachineConfig config = smallConfig(4);
    config.shootdown_policy = hw::ShootdownPolicy::LazyAsid;
    config.tlb_asid_tags = true;
    // No scheduler timer: a tick landing while the driver is mid-op
    // can park it until the *next* tick (up to a full period), which
    // would push an unperturbed revoke out of the writer's on-CPU
    // window and make the baseline's in-window timing nondeterministic
    // in practice. All threads here block voluntarily, so dispatch
    // stays prompt without preemption.
    config.timer_period = 0;
    return config;
}

/**
 * The lazy-ASID alternation: a writer in task A pinned to CPU 1
 * alternates with a filler thread in task B on the same processor, so
 * A's tagged TLB entries survive on CPU 1 while B's space is the
 * current one there. The driver (CPU 0) keys each revocation off the
 * writer's touch signal: unperturbed, the revoke lands inside the
 * writer's 500 us on-CPU window, A is current on CPU 1, and the
 * policy takes the ordinary IPI path -- the run survives even with
 * the generation check planted out. Only a schedule that delays the
 * revoke into the writer's 2.5 ms sleep makes CPU 1 a deferred-flush
 * target; the healthy context-load hook then flushes A's stale
 * entries when the writer wakes, while the planted bug
 * (chk_skip_asid_gen_check) leaves the revoked translation live and
 * the writer's next store lands through it.
 *
 * After the writer exits, one more revocation is issued while the
 * filler's space is current: that one must take the deferred path
 * even unperturbed, which is the baseline coverage check that the
 * lazy machinery engaged at all.
 */
Scenario::Launch
lazyAsidLaunch()
{
    return [](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("chk-asid");
                vm::Task *other = kernel.createTask("chk-asid-b");
                VAddr target = 0;
                VAddr fill = 0;
                if (!kernel.vmAllocate(drv, *task, &target, kPageSize,
                                       true) ||
                    !kernel.vmAllocate(drv, *other, &fill, kPageSize,
                                       true)) {
                    failPredicate(state, "vmAllocate failed");
                    finish(kernel, state);
                    return;
                }
                bool stop_writer = false;
                bool stop_filler = false;
                // Touch signal, bumped right after each store; the
                // driver keys its revoke off it so the revoke lands
                // while the writer still owns its on-CPU window.
                std::uint32_t beat = 0;
                kern::Thread *writer = kernel.spawnThread(
                    task, "chk-kid",
                    [kp, target, &stop_writer,
                     &beat](kern::Thread &self) {
                        vm::Kernel &kernel = *kp;
                        std::uint32_t n = 0;
                        while (!stop_writer) {
                            kern::AccessResult r =
                                self.access(target, ProtWrite);
                            if (r.ok)
                                kernel.machine().mem().write32(
                                    r.paddr, ++n);
                            else
                                self.access(target, ProtRead);
                            ++beat;
                            // On-CPU window: A stays current here. It
                            // must comfortably cover the driver's
                            // beat-to-revoke latency (the vm op's
                            // kernel section and map walk are a few
                            // hundred us), so only an injected delay
                            // pushes the revoke past it.
                            self.cpu().advance(2000 * kUsec);
                            // Off-CPU window: the filler's space is
                            // context-loaded over A's.
                            self.sleep(2500 * kUsec);
                        }
                    },
                    1);
                kern::Thread *filler = kernel.spawnThread(
                    other, "chk-filler",
                    [fill, &stop_filler](kern::Thread &self) {
                        while (!stop_filler) {
                            self.access(fill, ProtRead);
                            self.compute(200 * kUsec);
                            // Voluntary yield: with the scheduler
                            // timer off, the woken writer is only
                            // dispatched at a block point, so keep
                            // them frequent.
                            self.sleep(100 * kUsec);
                        }
                    },
                    1);
                drv.sleep(4 * kMsec);
                for (unsigned round = 0; round < 3; ++round) {
                    const std::uint32_t seen = beat;
                    while (beat == seen && !state->finished)
                        drv.sleep(20 * kUsec);
                    // The 4 ms settle spans the writer's wakeup (its
                    // 2.5 ms sleep plus the filler's sub-300-us
                    // dispatch grain), so a store through a stale
                    // surviving entry always lands inside the watch.
                    watchRevoked(kernel, drv, *task, target, 1,
                                 4 * kMsec, state, "asid", round);
                    drv.sleep(2 * kMsec);
                }
                stop_writer = true;
                drv.join(*writer);
                // Coverage revoke: A cannot be current on CPU 1 now.
                if (!kernel.vmProtect(drv, *task, target, kPageSize,
                                      ProtRead))
                    failPredicate(state, "vmProtect(cover) failed");
                stop_filler = true;
                drv.join(*filler);
                if (kernel.pmaps()
                        .shoot()
                        .policy()
                        .flushes_deferred == 0)
                    failCoverage(state, "asid: no deferred flush");
                finish(kernel, state);
            },
            0);
    };
}

// ---- Device / IOTLB scenarios (docs/DEVICES.md) --------------------

/**
 * Re-arm DMA after a protection restore: increases are repaired
 * lazily by faults, and a device cannot fault -- its walks keep
 * seeing the read-only PTE until a CPU touch repairs the mapping.
 * This is the CPU half of a real driver's buffer-recycle cycle.
 */
void
repairForDma(vm::Kernel &kernel, kern::Thread &drv, vm::Task &task,
             VAddr va, unsigned pages)
{
    kern::Thread *fixer = kernel.spawnThread(
        &task, "chk-repair",
        [va, pages](kern::Thread &self) {
            for (unsigned i = 0; i < pages; ++i)
                self.access(va + i * kPageSize, ProtWrite);
        },
        1);
    drv.join(*fixer);
}

/** A small machine with @p devices DMA devices on a 4-entry IOTLB. */
hw::MachineConfig
devConfig(unsigned devices, unsigned ncpus = 4)
{
    hw::MachineConfig config = smallConfig(ncpus);
    config.devices = devices;
    config.iotlb_entries = 4;
    return config;
}

/**
 * The device storm shared by dev-dma-race and broken-iotlb: device 0
 * streams DMA writes into a target page, sweeping 2x-capacity decoy
 * reads after each write so the target's IOTLB entry is evicted (and
 * walked afresh) every beat. The driver keys each revocation off the
 * device's beat signal plus a margin, so the unperturbed revoke lands
 * in the inter-beat gap, long after the sweep -- only a perturbation
 * that parks the device inside the sweep leaves the stale writable
 * entry resident across the revoke.
 *
 * Right after each revocation the driver toggles protection on an
 * unrelated task's page @p probes times: each toggle is a pmap op,
 * and each op is a stale-translation audit. The healthy drain leaves
 * nothing for those audits to find; the planted drain bug
 * (chk_skip_iotlb_invalidate) clears the action-needed excuse while
 * skipping the invalidations, so a probe landing between the device's
 * drain and the sweep's eviction sees the stale writable entry
 * against the read-only PTE.
 *
 * The predicate is the device-side analog of watchRevoked: the
 * writes_committed counter may not move between the revocation's
 * completion and the restore -- the initiator's device sync already
 * waited out any in-flight transfer, and every later write must fault
 * on the read-only PTE.
 */
Scenario::Launch
devStormLaunch(unsigned rounds, unsigned decoys, Tick margin,
               Tick settle, unsigned probes)
{
    return [=](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state, rounds, decoys, margin, settle,
             probes](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("chk-dev");
                vm::Task *aud = kernel.createTask("chk-dev-audit");
                VAddr base = 0;
                VAddr probe = 0;
                if (!kernel.vmAllocate(drv, *task, &base,
                                       (1 + decoys) * kPageSize,
                                       true) ||
                    !kernel.vmAllocate(drv, *aud, &probe, kPageSize,
                                       true)) {
                    failPredicate(state, "vmAllocate failed");
                    finish(kernel, state);
                    return;
                }
                // Fault every page in up front: the IOMMU walker does
                // not fault -- a DMA against an unmapped page is a
                // dropped operation, not a lazy fill.
                kern::Thread *toucher = kernel.spawnThread(
                    task, "chk-touch",
                    [decoys, base](kern::Thread &self) {
                        for (unsigned i = 0; i <= decoys; ++i)
                            self.access(base + i * kPageSize,
                                        ProtWrite);
                    },
                    1);
                drv.join(*toucher);
                kern::Thread *audtouch = kernel.spawnThread(
                    aud, "chk-touch",
                    [probe](kern::Thread &self) {
                        self.access(probe, ProtWrite);
                    },
                    1);
                drv.join(*audtouch);

                dev::DmaDevice &device = kernel.device(0);
                dev::DmaStream stream;
                stream.pmap = &task->pmap();
                stream.target = vaToVpn(base);
                stream.decoy_base = vaToVpn(base + kPageSize);
                stream.decoys = decoys;
                // The idle gap must swallow the driver's whole revoke
                // pipeline: from the beat bump it observes, through
                // the margin, the VM-op entry costs, and the locked
                // pmap section up to the drain request -- ~1.2 ms all
                // told. A device walk that starts while that section
                // holds the lock stalls in-flight until the drain
                // request aborts it, so a gap shorter than the
                // pipeline would park the device inside the locked
                // window on every unperturbed beat.
                stream.gap = 1500 * kUsec;
                device.startStream(stream);
                drv.sleep(2 * kMsec);
                for (unsigned round = 0; round < rounds; ++round) {
                    // Sync to the device: wait out the current beat,
                    // then the margin (the sweep takes ~70 us
                    // unperturbed), so the revoke lands in the gap.
                    const std::uint64_t seen = device.beat();
                    while (device.beat() == seen && !state->finished)
                        drv.sleep(20 * kUsec);
                    drv.sleep(margin);
                    if (!kernel.vmProtect(drv, *task, base, kPageSize,
                                          ProtRead)) {
                        failPredicate(state,
                                      "vmProtect(read-only) failed");
                        break;
                    }
                    const std::uint64_t committed =
                        device.writes_committed;
                    for (unsigned p = 0; p < probes; ++p) {
                        drv.sleep(25 * kUsec);
                        kernel.vmProtect(drv, *aud, probe, kPageSize,
                                         (p & 1) ? ProtReadWrite
                                                 : ProtRead);
                    }
                    drv.sleep(settle);
                    if (device.writes_committed != committed) {
                        char msg[96];
                        std::snprintf(
                            msg, sizeof(msg),
                            "dev round %u: DMA write committed "
                            "through a revoked mapping (%llu -> %llu)",
                            round,
                            static_cast<unsigned long long>(committed),
                            static_cast<unsigned long long>(
                                device.writes_committed));
                        failPredicate(state, msg);
                    }
                    if (!kernel.vmProtect(drv, *task, base, kPageSize,
                                          ProtReadWrite))
                        failPredicate(state,
                                      "vmProtect(restore) failed");
                    repairForDma(kernel, drv, *task, base, 1);
                    drv.sleep(settle);
                }
                device.stop();
                while (device.streaming())
                    drv.sleep(100 * kUsec);
                if (device.writes_committed == 0)
                    failCoverage(state, "dev: no DMA write committed");
                if (device.dma_faults == 0)
                    failCoverage(state,
                                 "dev: no revoked DMA was dropped");
                if (kernel.pmaps().shoot().device_commands == 0)
                    failCoverage(state, "dev: no device command sent");
                finish(kernel, state);
            },
            0);
    };
}

/**
 * dev-masked: with a 2 ms wire occupancy every revocation lands
 * mid-transfer -- the device is the "masked responder" of the device
 * world, unable to apply its queued action until the wire is quiet.
 * The initiator's drain request bounds the conflict at
 * dev_drain_bound: the transfer aborts, nothing lands in memory, and
 * the initiator's device sync observes a quiet wire before the pmap
 * change is made.
 */
Scenario::Launch
devAbortLaunch(unsigned rounds)
{
    return [=](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state, rounds](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("chk-dev-mask");
                VAddr base = 0;
                if (!kernel.vmAllocate(drv, *task, &base, kPageSize,
                                       true)) {
                    failPredicate(state, "vmAllocate failed");
                    finish(kernel, state);
                    return;
                }
                kern::Thread *toucher = kernel.spawnThread(
                    task, "chk-touch",
                    [base](kern::Thread &self) {
                        self.access(base, ProtWrite);
                    },
                    1);
                drv.join(*toucher);

                dev::DmaDevice &device = kernel.device(0);
                dev::DmaStream stream;
                stream.pmap = &task->pmap();
                stream.target = vaToVpn(base);
                stream.gap = 100 * kUsec;
                device.startStream(stream);
                for (unsigned round = 0; round < rounds; ++round) {
                    // The beat bumps at a commit; the next transfer
                    // spans [gap, gap + 2 ms] after it, so a revoke
                    // half a millisecond in is reliably mid-transfer.
                    const std::uint64_t seen = device.beat();
                    while (device.beat() == seen && !state->finished)
                        drv.sleep(20 * kUsec);
                    drv.sleep(500 * kUsec);
                    if (!kernel.vmProtect(drv, *task, base, kPageSize,
                                          ProtRead)) {
                        failPredicate(state,
                                      "vmProtect(read-only) failed");
                        break;
                    }
                    const std::uint64_t committed =
                        device.writes_committed;
                    drv.sleep(2 * kMsec);
                    if (device.writes_committed != committed) {
                        char msg[96];
                        std::snprintf(
                            msg, sizeof(msg),
                            "mask round %u: aborted/revoked DMA "
                            "write landed (%llu -> %llu)",
                            round,
                            static_cast<unsigned long long>(committed),
                            static_cast<unsigned long long>(
                                device.writes_committed));
                        failPredicate(state, msg);
                    }
                    if (!kernel.vmProtect(drv, *task, base, kPageSize,
                                          ProtReadWrite))
                        failPredicate(state,
                                      "vmProtect(restore) failed");
                    repairForDma(kernel, drv, *task, base, 1);
                    drv.sleep(kMsec);
                }
                device.stop();
                while (device.streaming())
                    drv.sleep(100 * kUsec);
                if (device.dma_aborts == 0)
                    failCoverage(state, "mask: no transfer aborted");
                if (kernel.pmaps().shoot().device_sync_waits == 0)
                    failCoverage(state, "mask: no device sync wait");
                if (device.writes_committed == 0)
                    failCoverage(state, "mask: no DMA write committed");
                finish(kernel, state);
            },
            0);
    };
}

/**
 * dev-numa-remote: two devices on a two-node machine -- device 0 on
 * node 0, device 1 on node 1 (MachineConfig::nodeOfDevice) -- each
 * streaming DMA writes into its own page of one task. The driver's
 * revocations must deliver consistency commands to both, the node-1
 * command crossing the interconnect at remote cost, while the healthy
 * drains keep both IOTLBs clean.
 */
Scenario::Launch
devNumaLaunch(unsigned rounds)
{
    return [=](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state, rounds](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("chk-dev-numa");
                VAddr base = 0;
                if (!kernel.vmAllocate(drv, *task, &base,
                                       2 * kPageSize, true)) {
                    failPredicate(state, "vmAllocate failed");
                    finish(kernel, state);
                    return;
                }
                kern::Thread *toucher = kernel.spawnThread(
                    task, "chk-touch",
                    [base](kern::Thread &self) {
                        self.access(base, ProtWrite);
                        self.access(base + kPageSize, ProtWrite);
                    },
                    1);
                drv.join(*toucher);

                // No decoys: the entries stay resident, so steady
                // state runs on IOTLB hits and every revocation has a
                // live entry to kill on each device.
                for (unsigned d = 0; d < 2; ++d) {
                    dev::DmaStream stream;
                    stream.pmap = &task->pmap();
                    stream.target = vaToVpn(base + d * kPageSize);
                    stream.gap = 300 * kUsec;
                    kernel.device(d).startStream(stream);
                }
                drv.sleep(2 * kMsec);
                for (unsigned round = 0; round < rounds; ++round) {
                    if (!kernel.vmProtect(drv, *task, base,
                                          2 * kPageSize, ProtRead)) {
                        failPredicate(state,
                                      "vmProtect(read-only) failed");
                        break;
                    }
                    const std::uint64_t committed =
                        kernel.device(0).writes_committed +
                        kernel.device(1).writes_committed;
                    drv.sleep(1500 * kUsec);
                    const std::uint64_t now_committed =
                        kernel.device(0).writes_committed +
                        kernel.device(1).writes_committed;
                    if (now_committed != committed) {
                        char msg[96];
                        std::snprintf(
                            msg, sizeof(msg),
                            "numa-dev round %u: DMA write committed "
                            "through a revoked mapping (%llu -> %llu)",
                            round,
                            static_cast<unsigned long long>(committed),
                            static_cast<unsigned long long>(
                                now_committed));
                        failPredicate(state, msg);
                    }
                    if (!kernel.vmProtect(drv, *task, base,
                                          2 * kPageSize,
                                          ProtReadWrite))
                        failPredicate(state,
                                      "vmProtect(restore) failed");
                    repairForDma(kernel, drv, *task, base, 2);
                    drv.sleep(1500 * kUsec);
                }
                for (unsigned d = 0; d < 2; ++d)
                    kernel.device(d).stop();
                while (kernel.device(0).streaming() ||
                       kernel.device(1).streaming())
                    drv.sleep(100 * kUsec);
                if (kernel.pmaps().shoot().cross_node_device_commands ==
                    0)
                    failCoverage(state,
                                 "numa-dev: no cross-node command");
                if (kernel.device(0).tlb().hits +
                        kernel.device(1).tlb().hits ==
                    0)
                    failCoverage(state, "numa-dev: no IOTLB hit");
                if (kernel.device(0).writes_committed +
                        kernel.device(1).writes_committed ==
                    0)
                    failCoverage(state,
                                 "numa-dev: no DMA write committed");
                finish(kernel, state);
            },
            0);
    };
}

} // namespace

std::vector<Scenario>
builtinScenarios()
{
    std::vector<Scenario> out;

    out.push_back(storm("storm-baseline",
                        "writer/reprotect storm, Multimax baseline",
                        smallConfig()));

    {
        Scenario s;
        s.name = "concurrent-initiators";
        s.summary = "two initiators reprotecting one pmap";
        s.config = smallConfig();
        s.bound = 400 * kMsec;
        s.launch = concurrentInitiatorsLaunch(2, 3);
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "idle-drain";
        s.summary = "kernel shootdown vs idle CPUs draining on exit";
        s.config = smallConfig();
        s.bound = 400 * kMsec;
        s.launch = idleDrainLaunch(3);
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "overflow-full-flush";
        s.summary = "action-queue overflow forces the full flush";
        s.config = smallConfig();
        s.config.action_queue_size = 2;
        s.bound = 400 * kMsec;
        s.launch = overflowLaunch(5);
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "masked-responder";
        s.summary = "responders inside interrupt-masked sections";
        s.config = smallConfig();
        s.bound = 600 * kMsec;
        s.launch = stormLaunch(3, 3, 4 * kMsec, 3 * kMsec,
                               1200 * kUsec);
        out.push_back(s);
    }

    // ---- Section 9 hardware options, one storm each ----------------
    {
        hw::MachineConfig c = smallConfig();
        c.high_priority_ipi = true;
        out.push_back(storm("hw-hipri-ipi",
                            "high-priority shootdown interrupt", c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.multicast_ipi = true;
        out.push_back(storm("hw-multicast", "multicast IPI", c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.broadcast_ipi = true;
        out.push_back(storm("hw-broadcast", "broadcast IPI", c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.tlb_software_reload = true;
        out.push_back(
            storm("hw-software-reload", "software TLB reload", c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.tlb_no_refmod_writeback = true;
        out.push_back(storm("hw-no-writeback",
                            "TLB without ref/mod writeback", c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.tlb_interlocked_refmod = true;
        out.push_back(storm("hw-interlocked-refmod",
                            "interlocked ref/mod updates", c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.tlb_remote_invalidate = true;
        c.tlb_no_refmod_writeback = true;
        out.push_back(storm("hw-remote-invalidate",
                            "remote TLB entry invalidation", c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.tlb_asid_tags = true;
        out.push_back(
            storm("hw-asid-tags", "address-space tagged TLB", c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.virtual_cache = true;
        c.tlb_no_refmod_writeback = true;
        out.push_back(storm("hw-virtual-cache",
                            "virtually addressed cache flushes", c));
    }
    {
        hw::MachineConfig c = smallConfig(8);
        c.kernel_pools = 2;
        out.push_back(storm("pools",
                            "Section 8 per-pool kernel restructuring",
                            c));
    }
    {
        hw::MachineConfig c = smallConfig();
        c.consistency_strategy = hw::ConsistencyStrategy::DelayedFlush;
        c.tlb_no_refmod_writeback = true;
        out.push_back(storm("delayed-flush",
                            "technique 2: timer-based delayed flush",
                            c, 1200 * kMsec));
    }

    // ---- NUMA scenarios (docs/NUMA.md) -----------------------------
    {
        Scenario s;
        s.name = "numa-storm";
        s.summary = "2-node storm: delegate IPIs + local forwarding";
        s.config = numaConfig();
        s.bound = 600 * kMsec;
        // 5 writers on an 8-CPU/2-node box put two targets on node 1,
        // so a cross-node shootdown needs both the delegate IPI and
        // the delegate's local forward.
        s.launch = stormLaunch(
            5, 3, 4 * kMsec, 2 * kMsec, 0,
            [](vm::Kernel &kernel, ScenarioState *state) {
                if (kernel.pmaps().shoot().cross_node_ipis == 0)
                    failCoverage(state, "numa: no cross-node IPI");
                if (kernel.pmaps().shoot().forwarded_ipis == 0)
                    failCoverage(state, "numa: no forwarded IPI");
            });
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "numa-concurrent-initiators";
        s.summary = "initiators on different nodes, one pmap";
        s.config = numaConfig();
        s.bound = 600 * kMsec;
        // Initiator threads land on CPUs 3 and 4 = nodes 0 and 1.
        s.launch = concurrentInitiatorsLaunch(2, 3);
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "numa-migration";
        s.summary = "migrate-on-remote-fault racing the storm";
        s.config = numaConfig();
        s.config.numa_placement = hw::PlacementPolicy::Migrate;
        s.config.numa_migrate_threshold = 2;
        s.bound = 600 * kMsec;
        s.launch = numaMigrateLaunch(4);
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "numa-replicas";
        s.summary = "per-node page-table replicas under the storm";
        s.config = numaConfig();
        s.config.numa_pt_replicas = true;
        s.bound = 600 * kMsec;
        s.launch = stormLaunch(
            5, 3, 4 * kMsec, 2 * kMsec, 0,
            [](vm::Kernel &kernel, ScenarioState *state) {
                if (kernel.pmaps().kernelPmap().table().replicas() < 2)
                    failCoverage(state, "replicas: not enabled");
            });
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "numa-masked-delegate";
        s.summary = "delegate CPUs stuck in masked sections";
        s.config = numaConfig();
        s.bound = 800 * kMsec;
        // Writers interleave interrupt-masked sections, so the node-1
        // delegate is often unable to take its cross-node IPI -- the
        // forward set must still drain (idle exit or a later respond)
        // for every shootdown to terminate within the bound.
        s.launch = stormLaunch(
            5, 3, 4 * kMsec, 3 * kMsec, 1200 * kUsec,
            [](vm::Kernel &kernel, ScenarioState *state) {
                if (kernel.pmaps().shoot().forwarded_ipis == 0)
                    failCoverage(state, "delegate: no forwarded IPI");
            });
        out.push_back(s);
    }

    // ---- Device / IOTLB scenarios (docs/DEVICES.md) ----------------
    {
        // Healthy twin of broken-iotlb: same machine, same launch,
        // but the drain applies its invalidations, so neither the
        // commit predicate nor the audit probes ever fire.
        Scenario s;
        s.name = "dev-dma-race";
        s.summary = "DMA stream racing revocations through an IOTLB";
        s.config = devConfig(1);
        s.bound = 600 * kMsec;
        s.launch = devStormLaunch(3, 8, 250 * kUsec, 1500 * kUsec, 8);
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "dev-masked";
        s.summary = "revocations against a device mid-transfer";
        s.config = devConfig(1);
        s.config.dev_transfer_cost = 2 * kMsec;
        s.bound = 600 * kMsec;
        s.launch = devAbortLaunch(3);
        out.push_back(s);
    }
    {
        Scenario s;
        s.name = "dev-numa-remote";
        s.summary = "device on the remote node answering commands";
        s.config = numaConfig();
        s.config.devices = 2;
        s.config.iotlb_entries = 4;
        s.bound = 600 * kMsec;
        s.launch = devNumaLaunch(3);
        out.push_back(s);
    }

    {
        // Healthy twin of broken-asid: same machine, same schedule
        // sensitivity, but the context-load generation check is live,
        // so every deferred flush is applied before the writer's
        // space becomes current again.
        Scenario s;
        s.name = "policy-lazy-asid";
        s.summary = "lazy-ASID deferred flushes under revocation";
        s.config = lazyAsidConfig();
        s.bound = 400 * kMsec;
        s.launch = lazyAsidLaunch();
        out.push_back(s);
    }

    // ---- Generated (property-based) scenarios ----------------------
    // Two vmgen entries ride in the library so the explorer lanes and
    // the span-balance validator exercise generated workloads by
    // default; any other vmgen-<seed>[x<nodes>] name still resolves
    // on demand through resolveScenario().
    {
        VmGenOptions g;
        g.seed = 1;
        out.push_back(vmgenScenario(g));
    }
    {
        VmGenOptions g;
        g.seed = 2;
        g.numa_nodes = 2;
        g.ncpus = 4;
        out.push_back(vmgenScenario(g));
    }
    // The device-enabled NUMA param point: the same generated op
    // sequence with a DMA device attached to the fuzz task, so every
    // revocation also runs the device command / drain path and each
    // DMA op is checked against the model ("vmgen-3x2d").
    {
        VmGenOptions g;
        g.seed = 3;
        g.numa_nodes = 2;
        g.ncpus = 4;
        g.devices = true;
        out.push_back(vmgenScenario(g));
    }

    return out;
}

Scenario
brokenStallScenario()
{
    Scenario s;
    s.name = "broken-stall";
    s.summary = "planted bug: responders skip the phase-2 stall";
    s.config = smallConfig();
    s.config.chk_skip_responder_stall = true;
    s.bound = 400 * kMsec;
    // One writer: with a single responder the no-stall window is a
    // few microseconds wide and the unperturbed run happens to
    // survive it, so detection genuinely requires exploration.
    s.launch = stormLaunch(1, 3, 4 * kMsec, 2 * kMsec);
    return s;
}

Scenario
brokenReplicaScenario()
{
    Scenario s;
    s.name = "broken-replica";
    s.summary = "planted bug: replica sync deferred past the rejoin";
    // One CPU per node: the writer (CPU 1) walks the node-1 replica,
    // which the planted bug leaves stale for a window after the
    // initiator (CPU 0) unlocks -- a reload in that window re-caches
    // the revoked PTE. The window is a single memory access wide, so
    // the unperturbed run survives and detection requires exploration
    // (the oracle's TLB-vs-primary audit catches the stale entry).
    s.config = numaConfig(2, 2);
    s.config.numa_pt_replicas = true;
    s.config.chk_defer_replica_sync = true;
    s.bound = 600 * kMsec;
    s.launch = stormLaunch(1, 3, 4 * kMsec, 2 * kMsec);
    return s;
}

Scenario
brokenL0Scenario()
{
    Scenario s;
    s.name = "broken-l0";
    s.summary = "planted bug: responders skip the L0 cache clear";
    s.config = smallConfig(4);
    s.config.chk_skip_l0_invalidate = true;
    s.bound = 400 * kMsec;
    s.launch = [](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "chk-driver",
            [kp, state](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("chk-l0");
                // Twice the 4-slot L0: a fast-path hit does not
                // refill, so a sweep of exactly l0_size pages can be
                // partially resident and leave the target slot alive.
                // At 2x the capacity every sweep access has reuse
                // distance >= 8 and must miss, so four of its fills
                // land before the sweep ends and the target slot is
                // out by construction.
                constexpr unsigned kDecoys = 8;
                VAddr base = 0;
                if (!kernel.vmAllocate(drv, *task, &base,
                                       (1 + kDecoys) * kPageSize,
                                       true)) {
                    failPredicate(state, "vmAllocate failed");
                    finish(kernel, state);
                    return;
                }
                const VAddr target = base;
                const VAddr decoys = base + kPageSize;
                bool stop = false;
                // Loop counter, bumped right after the target touch.
                // The driver keys its revoke off this signal so the
                // revoke lands a fixed interval after the touch --
                // far past the decoy sweep that flushes the target
                // out of the L0, unless a perturbation parks the
                // writer inside the sweep.
                std::uint32_t beat = 0;
                kern::Thread *writer = kernel.spawnThread(
                    task, "chk-kid",
                    [kp, target, decoys, &stop,
                     &beat](kern::Thread &self) {
                        vm::Kernel &kernel = *kp;
                        std::uint32_t n = 0;
                        while (!stop) {
                            kern::AccessResult r =
                                self.access(target, ProtWrite);
                            if (r.ok)
                                kernel.machine().mem().write32(
                                    r.paddr, ++n);
                            else
                                self.access(target, ProtRead);
                            ++beat;
                            // The sweep: a few microseconds of decoy
                            // walks, after which the target slot has
                            // rotated out of the 4-entry L0.
                            for (unsigned i = 0; i < kDecoys; ++i)
                                self.access(decoys + i * kPageSize,
                                            ProtRead);
                            self.cpu().advance(250 * kUsec);
                        }
                    },
                    1);
                drv.sleep(4 * kMsec);
                for (unsigned round = 0; round < 3; ++round) {
                    // Sync to the writer: wait out the current beat,
                    // then give the sweep 250 us to finish (it takes
                    // ~40 us unperturbed) before revoking. Only a
                    // schedule that delays the sweep by most of that
                    // margin leaves the stale slot resident at the
                    // revoke's completion.
                    const std::uint32_t seen = beat;
                    while (beat == seen && !state->finished)
                        drv.sleep(20 * kUsec);
                    drv.sleep(250 * kUsec);
                    watchRevoked(kernel, drv, *task, target, 1,
                                 2 * kMsec, state, "l0", round);
                    drv.sleep(2 * kMsec);
                }
                stop = true;
                drv.join(*writer);
                if (kernel.pmaps().shoot().initiated == 0)
                    failCoverage(state, "l0: no shootdown ran");
                finish(kernel, state);
            },
            0);
    };
    return s;
}

Scenario
brokenAsidScenario()
{
    Scenario s;
    s.name = "broken-asid";
    s.summary = "planted bug: context load skips the ASID check";
    // Same machine and launch as policy-lazy-asid, but the LazyAsid
    // context-load hook returns before consulting the deferred-flush
    // set, so a space whose flush was deferred comes back current
    // with its revoked translations still live. Unperturbed, every
    // revoke lands inside the writer's on-CPU window (no defer on
    // CPU 1), so the run survives; detection requires a schedule that
    // pushes a revoke into the writer's sleep.
    s.config = lazyAsidConfig();
    s.config.chk_skip_asid_gen_check = true;
    s.bound = 400 * kMsec;
    s.launch = lazyAsidLaunch();
    return s;
}

Scenario
brokenIotlbScenario()
{
    Scenario s;
    s.name = "broken-iotlb";
    s.summary = "planted bug: device drain skips the invalidations";
    // Same machine and launch as dev-dma-race, but the device's drain
    // clears the action-needed flag (the audit excuse) and charges
    // full cost while skipping the IOTLB invalidations. Unperturbed,
    // every drain runs when the decoy sweep has already evicted the
    // target's entry, so nothing stale survives and the baseline
    // passes; a schedule that parks the device inside the sweep
    // leaves the stale writable entry resident and flag-less when the
    // driver's audit probes land, which the oracle's IOTLB-vs-page-
    // table audit flags.
    s.config = devConfig(1);
    s.config.chk_skip_iotlb_invalidate = true;
    s.bound = 600 * kMsec;
    s.launch = devStormLaunch(3, 8, 250 * kUsec, 1500 * kUsec, 8);
    return s;
}

const Scenario *
findScenario(const std::vector<Scenario> &library,
             const std::string &name)
{
    for (const Scenario &s : library) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

bool
resolveScenario(const std::string &name, Scenario *out)
{
    if (name == "broken-stall") {
        *out = brokenStallScenario();
        return true;
    }
    if (name == "broken-replica") {
        *out = brokenReplicaScenario();
        return true;
    }
    if (name == "broken-l0") {
        *out = brokenL0Scenario();
        return true;
    }
    if (name == "broken-asid") {
        *out = brokenAsidScenario();
        return true;
    }
    if (name == "broken-iotlb") {
        *out = brokenIotlbScenario();
        return true;
    }
    VmGenOptions g;
    if (parseVmgenName(name, &g)) {
        *out = vmgenScenario(g);
        return true;
    }
    std::vector<Scenario> library = builtinScenarios();
    for (Scenario &s : library) {
        if (s.name == name) {
            *out = std::move(s);
            return true;
        }
    }
    return false;
}

} // namespace mach::chk
