#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace mach
{

namespace
{
bool log_quiet = false;

void
vlog(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogQuiet(bool quiet)
{
    log_quiet = quiet;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (log_quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (log_quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("info", fmt, ap);
    va_end(ap);
}

} // namespace mach
