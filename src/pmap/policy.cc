#include "pmap/policy.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/trace.hh"
#include "hw/bus.hh"
#include "kern/cpu.hh"
#include "kern/machine.hh"
#include "pmap/pmap.hh"
#include "pmap/shootdown.hh"

namespace mach::pmap
{

namespace
{

/** The 1989 algorithm, exactly: every hook keeps its default. */
class BaselinePolicy : public ShootdownPolicy
{
  public:
    using ShootdownPolicy::ShootdownPolicy;
    hw::ShootdownPolicy kind() const override
    {
        return hw::ShootdownPolicy::Baseline;
    }
};

/**
 * ASID-generation lazy invalidation. With address-space tags the
 * entries of a space that is *not current* on some processor are mere
 * residue: that processor cannot translate through them until the
 * space is context-loaded again. So instead of interrupting it, mark
 * the residue dead (a deferred flush -- the software equivalent of
 * bumping the space's ASID generation) and clear the in-use bit; the
 * context-load hook settles the debt before the space can translate
 * there again.
 *
 * Safety: translations only ever come from the current space, so the
 * residue is unreachable while the flag is set; Pmap::activate runs
 * the hook before the space becomes current; the hook stalls while
 * the pmap is mid-update, so the flush cannot land between a defer
 * decision and the pmap change it covers (that would let the reload
 * walk re-cache pre-change PTEs). chk_skip_asid_gen_check plants
 * exactly that omitted-flush bug for the checker to find.
 */
class LazyAsidPolicy : public ShootdownPolicy
{
  public:
    using ShootdownPolicy::ShootdownPolicy;
    hw::ShootdownPolicy kind() const override
    {
        return hw::ShootdownPolicy::LazyAsid;
    }

    bool
    deferTarget(kern::Cpu &self, CpuId target, Pmap &pmap, Vpn start,
                Vpn end) override
    {
        (void)start;
        (void)end;
        if (pmap.isKernel())
            return false; // The kernel space is current everywhere.
        kern::Cpu &cpu = machine_.cpu(target);
        if (cpu.cur_pmap == &pmap)
            return false; // Live translations: must interrupt.
        cpu.tlb().deferFlush(pmap.space());
        pmap.clearInUse(target);
        self.memAccess(1);
        ++flushes_deferred;
        if (!cpu.idle &&
            !machine_.intr().pending(target, hw::Irq::Shootdown))
            ++ipis_elided;
        MACH_TRACE_LOG(Shootdown, machine_.now(),
                       "cpu%u defers flush of space %u on cpu%u "
                       "(not current there)",
                       self.id(), pmap.space(), target);
        return true;
    }

    void
    onContextLoad(kern::Cpu &cpu, Pmap &pmap) override
    {
        if (pmap.isKernel())
            return;
        hw::Tlb &tlb = cpu.tlb();
        if (!tlb.hasDeferredFlush(pmap.space()))
            return;
        if (machine_.cfg().chk_skip_asid_gen_check) {
            // PLANTED BUG (chk_skip_asid_gen_check): load the space
            // without applying the deferred flush -- the "skipped
            // generation bump". The stale residue becomes reachable
            // the instant the space is current; the checker's oracle
            // and the broken-asid scenario exist to catch this.
            return;
        }
        if (pmap.locked()) {
            // The space is mid-update: flushing now would let the
            // reload walk re-cache pre-change PTEs. Stall like a
            // responder -- leaving the active set keeps a concurrent
            // initiator's rendezvous deadlock-free.
            const bool was_active = cpu.active;
            cpu.active = false;
            hw::Bus::User bus_user(cpu.bus());
            while (pmap.locked())
                cpu.spinOnce();
            cpu.active = was_active;
        }
        if (tlb.consumeDeferredFlush(pmap.space())) {
            ++deferred_flushes_applied;
            cpu.advanceNoPoll(machine_.cfg().tlb_flush_cost);
            MACH_TRACE_LOG(Shootdown, machine_.now(),
                           "cpu%u applies deferred flush of space %u "
                           "at context load",
                           cpu.id(), pmap.space());
        }
    }
};

/**
 * Batched / coalesced shootdowns. Two coalescing levers: (a) queued
 * actions for the same pmap merge into one covering range, so a
 * responder pass does one ranged invalidation instead of several;
 * (b) a directed IPI is elided when the target is already inside its
 * respond/idle-drain service loop -- its loop is guaranteed to
 * re-check the action-needed flag we just set, so the interrupt would
 * only buy a redundant second dispatch. The elision is bounded by
 * ipi_coalesce_window: a target that has been servicing longer than
 * the window (e.g. parked on a long stall) gets the IPI anyway, so
 * coalescing can delay a wakeup by at most the window.
 *
 * Safety: the servicing flag is set before the service loop's first
 * action-needed check and cleared at the same instant as its last
 * (false) check, with no simulated time in between -- so an initiator
 * that observes it set has its freshly-queued action ordered before a
 * future re-check of the loop condition, never after the final one.
 */
class BatchedPolicy : public ShootdownPolicy
{
  public:
    using ShootdownPolicy::ShootdownPolicy;
    hw::ShootdownPolicy kind() const override
    {
        return hw::ShootdownPolicy::Batched;
    }

    bool
    mergeQueued(std::vector<ShootAction> &queue, Pmap &pmap, Vpn start,
                Vpn end) override
    {
        for (ShootAction &action : queue) {
            if (action.pmap != &pmap)
                continue;
            // Fold overlapping or adjacent ranges; disjoint ranges of
            // the same pmap also merge (the responder invalidates a
            // superset, which is always conservative).
            action.start = std::min(action.start, start);
            action.end = std::max(action.end, end);
            ++actions_merged;
            return true;
        }
        return false;
    }

    bool
    elideIpi(kern::Cpu &self, CpuId target) override
    {
        (void)self;
        const CpuShootState &st = shoot_.stateFor(target);
        if (!st.servicing)
            return false;
        if (machine_.now() - st.service_entered >
            machine_.cfg().ipi_coalesce_window)
            return false;
        ++ipis_elided;
        MACH_TRACE_LOG(Shootdown, machine_.now(),
                       "cpu%u coalesces IPI into cpu%u's in-progress "
                       "responder pass",
                       self.id(), target);
        return true;
    }
};

/**
 * Range invalidation with a full-space-flush crossover. The baseline
 * escalates anything beyond tlb_flush_threshold to a whole-TLB flush,
 * evicting every bystander space; this policy models hardware with a
 * ranged invalidate: up to range_flush_crossover pages it invalidates
 * exactly [start, end) (same per-page cost as the baseline's
 * per-entry loop), and beyond that it flushes only the victim space.
 * The win is not a cheaper instant -- it is every unrelated entry
 * that survives and saves a reload later.
 */
class RangeFlushPolicy : public ShootdownPolicy
{
  public:
    using ShootdownPolicy::ShootdownPolicy;
    hw::ShootdownPolicy kind() const override
    {
        return hw::ShootdownPolicy::RangeFlush;
    }

    bool
    invalidate(kern::Cpu &cpu, hw::SpaceId space, Vpn start,
               Vpn end) override
    {
        const hw::MachineConfig &cfg = machine_.cfg();
        if (cfg.virtual_cache)
            return false; // Directory search; ranges buy nothing.
        const unsigned npages = end - start;
        if (npages <= cfg.tlb_flush_threshold)
            return false; // Identical to the baseline per-entry loop.
        if (npages <= cfg.range_flush_crossover) {
            cpu.tlb().invalidateRange(space, start, end);
            cpu.advanceNoPoll(cfg.tlb_invalidate_cost * npages);
            ++range_invalidates;
        } else {
            cpu.tlb().flushSpace(space);
            cpu.advanceNoPoll(cfg.tlb_flush_cost);
            ++full_space_flushes;
        }
        return true;
    }
};

/**
 * mmap-reuse flush elision (arXiv 2409.10946). Every TLB fill sets
 * the PTE's reference bit at the fill instant, so a valid PTE whose
 * bit is still clear provably has no translation cached in any TLB
 * (or L0 slot) on the machine -- and invalid PTEs are never cached at
 * all. An operation whose whole range passes that test needs no
 * consistency actions: this is exactly the freshly-reused, never-yet-
 * touched mmap region.
 *
 * Race-freedom: the scan runs under the pmap lock, and with software
 * reload (required by validate()) a TLB miss stalls on a locked pmap
 * before walking -- so no fill of this space can land between the
 * scan and the completed change. NUMA replicas are covered because
 * readPte OR-merges the per-node reference bits.
 */
class ReuseElidePolicy : public ShootdownPolicy
{
  public:
    using ShootdownPolicy::ShootdownPolicy;
    hw::ShootdownPolicy kind() const override
    {
        return hw::ShootdownPolicy::ReuseElide;
    }

    bool
    reuseElideCheck(kern::Cpu &self, Pmap &pmap, Vpn start,
                    Vpn end) override
    {
        // Bound the scan: past this many pages the check costs more
        // than the shootdown it might save.
        constexpr unsigned kScanCap = 64;
        const unsigned npages = end - start;
        if (npages == 0 || npages > kScanCap)
            return false;
        const hw::MachineConfig &cfg = machine_.cfg();
        self.advanceNoPoll(cfg.lazy_check_cost_per_page * npages);
        // One host instant for the whole scan: fills of this space are
        // stalled on the pmap lock we hold, so the verdict stays true
        // until the operation completes.
        for (Vpn vpn = start; vpn < end; ++vpn) {
            const std::uint32_t pte = pmap.table().readPte(vpn);
            if (hw::pte::valid(pte) && hw::pte::referenced(pte))
                return false;
        }
        ++reuse_elisions;
        MACH_TRACE_LOG(Shootdown, machine_.now(),
                       "cpu%u elides consistency actions for space %u "
                       "vpn [0x%x,0x%x): no page referenced since its "
                       "last clean instant",
                       self.id(), pmap.space(), start, end);
        return true;
    }
};

} // namespace

std::unique_ptr<ShootdownPolicy>
makeShootdownPolicy(ShootdownController &shoot, kern::Machine &machine)
{
    switch (machine.cfg().shootdown_policy) {
      case hw::ShootdownPolicy::Baseline:
        return std::make_unique<BaselinePolicy>(shoot, machine);
      case hw::ShootdownPolicy::LazyAsid:
        return std::make_unique<LazyAsidPolicy>(shoot, machine);
      case hw::ShootdownPolicy::Batched:
        return std::make_unique<BatchedPolicy>(shoot, machine);
      case hw::ShootdownPolicy::RangeFlush:
        return std::make_unique<RangeFlushPolicy>(shoot, machine);
      case hw::ShootdownPolicy::ReuseElide:
        return std::make_unique<ReuseElidePolicy>(shoot, machine);
    }
    panic("makeShootdownPolicy: bad policy %u",
          static_cast<unsigned>(machine.cfg().shootdown_policy));
}

} // namespace mach::pmap
