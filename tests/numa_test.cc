/**
 * @file
 * The NUMA topology layer end to end: node/distance math, per-node
 * frame allocation, page-placement policies, per-node page-table
 * replicas, the two-phase cross-node shootdown, and the determinism
 * contract at multi-node machine shapes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/consistency_tester.hh"
#include "apps/parthenon.hh"
#include "base/perturb.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"
#include "farm/farm.hh"
#include "hw/page_table.hh"
#include "hw/phys_mem.hh"
#include "numa/topology.hh"
#include "obs/recorder.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"
#include "xpr/machine_stats.hh"

namespace mach
{
namespace
{

// ---------------------------------------------------------------------
// Topology: node layout, SLIT distances, interconnect cost model.
// ---------------------------------------------------------------------

hw::MachineConfig
numaConfig(unsigned ncpus, unsigned nodes)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = ncpus;
    config.numa_nodes = nodes;
    return config;
}

TEST(NumaTopology, NodeOfCpuSplitsContiguousBlocks)
{
    const hw::MachineConfig config = numaConfig(32, 2);
    const numa::Topology topo(&config);
    EXPECT_EQ(topo.nodes(), 2u);
    EXPECT_EQ(topo.cpusPerNode(), 16u);
    EXPECT_EQ(topo.nodeOfCpu(0), 0u);
    EXPECT_EQ(topo.nodeOfCpu(15), 0u);
    EXPECT_EQ(topo.nodeOfCpu(16), 1u);
    EXPECT_EQ(topo.nodeOfCpu(31), 1u);
}

TEST(NumaTopology, UniformDistanceAndRemoteCost)
{
    hw::MachineConfig config = numaConfig(32, 4);
    config.numa_remote_distance = 25;
    const numa::Topology topo(&config);
    for (unsigned a = 0; a < 4; ++a)
        for (unsigned b = 0; b < 4; ++b)
            EXPECT_EQ(topo.distance(a, b), a == b ? 10u : 25u);

    // Local accesses never pay; a remote entry d costs (d-10)/10 of
    // the local price on top, deterministically.
    EXPECT_EQ(topo.remoteCost(1, 1, 1000), 0u);
    EXPECT_EQ(topo.remoteCost(0, 2, 1000), 1500u);
    EXPECT_EQ(topo.remoteCost(2, 0, 600), 900u);
}

TEST(NumaTopology, ExplicitMatrixSpec)
{
    hw::MachineConfig config = numaConfig(32, 2);
    config.numa_distance_spec = "10,40;40,10";
    const numa::Topology topo(&config);
    EXPECT_EQ(topo.distance(0, 1), 40u);
    EXPECT_EQ(topo.distance(1, 0), 40u);
    EXPECT_EQ(topo.distance(0, 0), 10u);
    // d=40 => 3x the local price charged as the remote share.
    EXPECT_EQ(topo.remoteCost(0, 1, 1000), 3000u);
}

TEST(NumaTopology, ParseDistanceRejectsBadMatrices)
{
    std::vector<unsigned> out;
    std::string error;
    EXPECT_TRUE(numa::Topology::parseDistance("10,25;25,10", 2, &out,
                                              &error))
        << error;
    EXPECT_EQ(out, (std::vector<unsigned>{10, 25, 25, 10}));

    // Asymmetric.
    EXPECT_FALSE(
        numa::Topology::parseDistance("10,25;30,10", 2, &out, &error));
    // Diagonal must be the ACPI local distance 10.
    EXPECT_FALSE(
        numa::Topology::parseDistance("12,25;25,10", 2, &out, &error));
    // Wrong shape for the node count.
    EXPECT_FALSE(
        numa::Topology::parseDistance("10,25", 2, &out, &error));
    // Off-diagonal below local is nonsense.
    EXPECT_FALSE(
        numa::Topology::parseDistance("10,5;5,10", 2, &out, &error));
}

TEST(NumaTopology, ValidateRejectsBadShapes)
{
    // ncpus must split evenly into nodes of <= 16 CPUs.
    hw::MachineConfig uneven = numaConfig(30, 4);
    EXPECT_DEATH(uneven.validate(), "evenly divide");
    hw::MachineConfig fat = numaConfig(64, 2);
    EXPECT_DEATH(fat.validate(), "16");
    hw::MachineConfig nine = numaConfig(36, 9);
    EXPECT_DEATH(nine.validate(), "out of range");
    // Replica machinery needs more than one node to replicate across.
    hw::MachineConfig lone = numaConfig(8, 1);
    lone.numa_pt_replicas = true;
    EXPECT_DEATH(lone.validate(), "numa_nodes");

    // The shapes the issue cares about are all fine: 2x16, 4x16, 8x16.
    numaConfig(32, 2).validate();
    numaConfig(64, 4).validate();
    numaConfig(128, 8).validate();
}

// ---------------------------------------------------------------------
// Per-node physical memory partitions.
// ---------------------------------------------------------------------

TEST(NumaPhysMem, PartitionsAndNodeLocalAllocation)
{
    hw::PhysMem mem(400, 4);
    EXPECT_EQ(mem.nodes(), 4u);
    EXPECT_EQ(mem.nodeOfPfn(1), 0u);
    EXPECT_EQ(mem.nodeOfPfn(99), 0u);
    EXPECT_EQ(mem.nodeOfPfn(100), 1u);
    EXPECT_EQ(mem.nodeOfPfn(399), 3u);

    for (unsigned node = 0; node < 4; ++node) {
        const Pfn pfn = mem.allocFrame(node);
        EXPECT_EQ(mem.nodeOfPfn(pfn), node) << "node " << node;
        mem.freeFrame(pfn);
    }
}

TEST(NumaPhysMem, ExhaustedNodeFallsBackDeterministically)
{
    hw::PhysMem mem(128, 2);
    // Drain node 1 completely (node 1 owns [64, 128)).
    std::vector<Pfn> held;
    while (mem.freeFramesOnNode(1) > 0)
        held.push_back(mem.allocFrame(1));
    for (Pfn pfn : held)
        EXPECT_EQ(mem.nodeOfPfn(pfn), 1u);

    // The next node-1 request is satisfied from node 0 instead of
    // panicking; freeing returns frames to their home partitions.
    const Pfn spill = mem.allocFrame(1);
    EXPECT_EQ(mem.nodeOfPfn(spill), 0u);
    mem.freeFrame(spill);
    const std::uint32_t node1_free = mem.freeFramesOnNode(1);
    for (Pfn pfn : held)
        mem.freeFrame(pfn);
    EXPECT_EQ(mem.freeFramesOnNode(1), node1_free + held.size());
}

// ---------------------------------------------------------------------
// Per-node page-table replicas (numaPTE style).
// ---------------------------------------------------------------------

TEST(NumaReplicas, WritePteFansOutToEveryNode)
{
    hw::PhysMem mem(512, 2);
    hw::PageTable table(&mem);
    table.enableReplicas(2);
    EXPECT_EQ(table.replicas(), 2u);

    const Vpn vpn = 0x300;
    table.writePte(vpn, hw::pte::make(42, ProtReadWrite));
    // Both nodes walk to the same translation, through different
    // physical table words in their own memory partitions.
    const hw::WalkResult w0 = table.walk(vpn, 0);
    const hw::WalkResult w1 = table.walk(vpn, 1);
    EXPECT_EQ(w0.pte, w1.pte);
    EXPECT_EQ(hw::pte::pfn(w1.pte), 42u);
    const PAddr p0 = table.pteAddr(vpn, 0);
    const PAddr p1 = table.pteAddr(vpn, 1);
    ASSERT_NE(p0, 0u);
    ASSERT_NE(p1, 0u);
    EXPECT_NE(p0, p1);
    EXPECT_EQ(mem.nodeOfPfn(p0 >> kPageShift), 0u);
    EXPECT_EQ(mem.nodeOfPfn(p1 >> kPageShift), 1u);
    EXPECT_TRUE(table.replicaDivergence(0, 1u << 20).empty());
}

TEST(NumaReplicas, RefModBitsMergeAcrossReplicas)
{
    hw::PhysMem mem(512, 2);
    hw::PageTable table(&mem);
    table.enableReplicas(2);
    const Vpn vpn = 0x21;
    table.writePte(vpn, hw::pte::make(7, ProtReadWrite));

    // Node 1's MMU writes ref/mod back into its own replica only.
    const PAddr p1 = table.pteAddr(vpn, 1);
    mem.write32(p1, mem.read32(p1) | hw::pte::kRef | hw::pte::kMod);
    EXPECT_FALSE(hw::pte::referenced(mem.read32(table.pteAddr(vpn, 0))));
    EXPECT_TRUE(hw::pte::referenced(table.readPte(vpn)));
    EXPECT_TRUE(hw::pte::modified(table.readPte(vpn)));
    // Per-node ref/mod divergence is expected, not a violation.
    EXPECT_TRUE(table.replicaDivergence(0, 1u << 20).empty());
}

TEST(NumaReplicas, DivergenceAuditFlagsStaleReplica)
{
    hw::PhysMem mem(512, 2);
    hw::PageTable table(&mem);
    table.enableReplicas(2);
    const Vpn vpn = 0x44;
    table.writePte(vpn, hw::pte::make(9, ProtReadWrite));

    // Corrupt the replica the way the planted bug would leave it: a
    // pre-change PTE the primary no longer holds.
    mem.write32(table.pteAddr(vpn, 1), hw::pte::make(8, ProtReadWrite));
    const std::vector<std::string> diver =
        table.replicaDivergence(0, 1u << 20);
    ASSERT_EQ(diver.size(), 1u);
    EXPECT_NE(diver[0].find("replica 1"), std::string::npos)
        << diver[0];
    EXPECT_NE(diver[0].find("0x44"), std::string::npos) << diver[0];
}

TEST(NumaReplicas, DeferredSyncCatchesUp)
{
    hw::PhysMem mem(512, 2);
    hw::PageTable table(&mem);
    table.enableReplicas(2);
    const Vpn vpn = 0x55;
    table.writePte(vpn, hw::pte::make(11, ProtReadWrite));

    table.setDeferredSync(true);
    table.writePte(vpn, 0);
    EXPECT_TRUE(table.deferredSyncPending());
    // The primary changed; the replica still maps the revoked page --
    // exactly the stale-translation window of the planted bug.
    EXPECT_FALSE(hw::pte::valid(table.walk(vpn, 0).pte));
    EXPECT_TRUE(hw::pte::valid(table.walk(vpn, 1).pte));

    table.syncReplicas();
    EXPECT_FALSE(table.deferredSyncPending());
    EXPECT_FALSE(hw::pte::valid(table.walk(vpn, 1).pte));
    EXPECT_TRUE(table.replicaDivergence(0, 1u << 20).empty());
}

// ---------------------------------------------------------------------
// Page placement policies.
// ---------------------------------------------------------------------

/** Run @p body as a driver thread on a freshly started kernel. */
void
inKernel(hw::MachineConfig config,
         const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    vm::Kernel kernel(config);
    kernel.start();
    bool finished = false;
    kernel.spawnThread(nullptr, "numa-driver",
                       [&](kern::Thread &driver) {
                           body(kernel, driver);
                           finished = true;
                           kernel.machine().ctx().requestStop();
                       });
    kernel.machine().run();
    ASSERT_TRUE(finished);
}

/** Node holding the frame @p va is mapped to in @p task. */
unsigned
nodeOfMapping(vm::Kernel &kernel, vm::Task &task, VAddr va)
{
    const std::uint32_t pte =
        task.pmap().table().readPte(va >> kPageShift);
    EXPECT_TRUE(hw::pte::valid(pte));
    return kernel.machine().mem().nodeOfPfn(hw::pte::pfn(pte));
}

TEST(NumaPlacement, FirstTouchAllocatesOnFaultingNode)
{
    hw::MachineConfig config = numaConfig(8, 2);
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &driver) {
        vm::Task *task = kernel.createTask("first-touch");
        VAddr va = 0;
        ASSERT_TRUE(kernel.vmAllocate(driver, *task, &va,
                                      2 * kPageSize, true));
        // CPU 1 lives on node 0, CPU 5 on node 1; each touches one page.
        kern::Thread *near = kernel.spawnThread(
            task, "near",
            [&](kern::Thread &self) { self.store32(va, 1); }, 1);
        driver.join(*near);
        kern::Thread *far = kernel.spawnThread(
            task, "far",
            [&](kern::Thread &self) {
                self.store32(va + kPageSize, 1);
            },
            5);
        driver.join(*far);

        EXPECT_EQ(nodeOfMapping(kernel, *task, va), 0u);
        EXPECT_EQ(nodeOfMapping(kernel, *task, va + kPageSize), 1u);
        EXPECT_GT(kernel.local_faults, 0u);
    });
}

TEST(NumaPlacement, InterleaveSpreadsPagesAcrossNodes)
{
    hw::MachineConfig config = numaConfig(8, 2);
    config.numa_placement = hw::PlacementPolicy::Interleave;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &driver) {
        vm::Task *task = kernel.createTask("interleave");
        VAddr va = 0;
        constexpr unsigned kPages = 8;
        ASSERT_TRUE(kernel.vmAllocate(driver, *task, &va,
                                      kPages * kPageSize, true));
        kern::Thread *toucher = kernel.spawnThread(
            task, "touch",
            [&](kern::Thread &self) {
                for (unsigned i = 0; i < kPages; ++i)
                    self.store32(va + i * kPageSize, i);
            },
            1);
        driver.join(*toucher);

        // One CPU touched everything, yet the frames alternate nodes.
        unsigned on_node[2] = {0, 0};
        for (unsigned i = 0; i < kPages; ++i)
            ++on_node[nodeOfMapping(kernel, *task,
                                    va + i * kPageSize)];
        EXPECT_EQ(on_node[0], kPages / 2);
        EXPECT_EQ(on_node[1], kPages / 2);
    });
}

TEST(NumaPlacement, MigrateMovesHotRemotePage)
{
    hw::MachineConfig config = numaConfig(8, 2);
    config.numa_placement = hw::PlacementPolicy::Migrate;
    config.numa_migrate_threshold = 2;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &driver) {
        vm::Task *task = kernel.createTask("migrate");
        VAddr va = 0;
        ASSERT_TRUE(
            kernel.vmAllocate(driver, *task, &va, kPageSize, true));

        // First touch from node 0 homes the frame there.
        kern::Thread *near = kernel.spawnThread(
            task, "near",
            [&](kern::Thread &self) { self.store32(va, 1); }, 1);
        driver.join(*near);
        ASSERT_EQ(nodeOfMapping(kernel, *task, va), 0u);

        // A node-1 CPU keeps faulting the page (each round revokes the
        // mapping so the next access really faults). At the threshold
        // the page migrates to the faulting node.
        for (unsigned round = 0; round < 3; ++round) {
            ASSERT_TRUE(kernel.vmProtect(driver, *task, va, kPageSize,
                                         ProtNone));
            ASSERT_TRUE(kernel.vmProtect(driver, *task, va, kPageSize,
                                         ProtReadWrite));
            kern::Thread *far = kernel.spawnThread(
                task, "far",
                [&](kern::Thread &self) { self.store32(va, round); },
                5);
            driver.join(*far);
        }

        EXPECT_GT(kernel.remote_faults, 0u);
        EXPECT_GE(kernel.page_migrations, 1u);
        EXPECT_EQ(nodeOfMapping(kernel, *task, va), 1u);
        // Migration revoked the old translation with a shootdown and
        // left every TLB consistent with the moved frame.
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    });
}

// ---------------------------------------------------------------------
// Two-phase cross-node shootdown.
// ---------------------------------------------------------------------

TEST(NumaShootdown, CrossNodeStormsUseDelegates)
{
    hw::MachineConfig config = numaConfig(8, 2);
    config.seed = 0x2d0de5;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 6,
                                    .warmup = 20 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());

    // Phase 1 sends one interconnect IPI per remote node; the delegate
    // fans the rest out locally.
    const pmap::ShootdownController &shoot = kernel.pmaps().shoot();
    EXPECT_GT(shoot.initiated, 0u);
    EXPECT_GT(shoot.cross_node_ipis, 0u);
    EXPECT_GT(shoot.forwarded_ipis, 0u);
    EXPECT_LT(shoot.cross_node_ipis + shoot.forwarded_ipis,
              shoot.interrupts_sent + shoot.forwarded_ipis + 1);

    const xpr::MachineStats stats = xpr::MachineStats::capture(kernel);
    EXPECT_EQ(stats.cross_node_ipis, shoot.cross_node_ipis);
    EXPECT_EQ(stats.forwarded_ipis, shoot.forwarded_ipis);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST(NumaShootdown, SingleNodeMachineNeverCrossesTheInterconnect)
{
    hw::MachineConfig config = numaConfig(8, 1);
    config.seed = 0x2d0de6;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 6,
                                    .warmup = 20 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    EXPECT_EQ(kernel.pmaps().shoot().cross_node_ipis, 0u);
    EXPECT_EQ(kernel.pmaps().shoot().forwarded_ipis, 0u);
    EXPECT_EQ(kernel.remote_faults, 0u);
}

// ---------------------------------------------------------------------
// Determinism at NUMA shapes.
// ---------------------------------------------------------------------

/** Parthenon on an N-node machine, optionally with the obs recorder. */
std::uint64_t
parthenonDigest(unsigned ncpus, unsigned nodes, bool record)
{
    hw::MachineConfig config = numaConfig(ncpus, nodes);
    config.seed = 0xa27e70 + nodes;
    vm::Kernel kernel(config);
    if (record)
        kernel.machine().recorder().enable();
    apps::Parthenon::Params params;
    params.runs = 2;
    apps::Parthenon app(params);
    app.execute(kernel);
    EXPECT_GT(app.items_processed, 0u);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    return xpr::runDigest(kernel);
}

TEST(NumaDeterminism, ParthenonDigestsMatchGolden)
{
    // Golden digests captured from the initial NUMA implementation.
    // They pin the multi-node order contract the same way the
    // single-node storm digests do: any change to interconnect
    // costing, delegate fan-out order, or placement must either leave
    // these bit-identical or consciously re-capture them.
    const std::uint64_t two_node = parthenonDigest(16, 2, false);
    const std::uint64_t four_node = parthenonDigest(32, 4, false);
    EXPECT_EQ(two_node, 0x05a1dcc4279b8368ull);
    EXPECT_EQ(four_node, 0xb30c2692ec808cbeull);

    // Run-to-run: same shape, same digest.
    EXPECT_EQ(parthenonDigest(16, 2, false), two_node);
    EXPECT_EQ(parthenonDigest(32, 4, false), four_node);
    // Different topologies genuinely diverge.
    EXPECT_NE(two_node, four_node);
}

TEST(NumaDeterminism, RecordingDoesNotPerturbTheRun)
{
    EXPECT_EQ(parthenonDigest(16, 2, true),
              parthenonDigest(16, 2, false));
}

TEST(NumaDeterminism, FarmShapeInvarianceOnNumaScenario)
{
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *storm = chk::findScenario(library,
                                                   "numa-storm");
    ASSERT_NE(storm, nullptr);

    std::vector<SchedulePerturber> probes;
    for (const char *text : {"", "e120+50000", "e700+250000,b40+9000"}) {
        SchedulePerturber p;
        ASSERT_TRUE(SchedulePerturber::parse(text, &p, nullptr));
        probes.push_back(p);
    }

    const chk::Explorer serial;
    std::vector<chk::TrialResult> want;
    for (const SchedulePerturber &p : probes)
        want.push_back(serial.runTrial(*storm, p));

    // MACH_FARM_JOBS=4: four pool workers must replay bit-identically.
    const chk::Explorer farmed(nullptr, farm::FarmOptions{4, false});
    const std::vector<chk::TrialResult> got =
        farmed.runTrials(*storm, probes);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].digest, want[i].digest) << "probe " << i;
        EXPECT_EQ(got[i].end_time, want[i].end_time) << "probe " << i;
        EXPECT_EQ(got[i].completed, want[i].completed) << "probe " << i;
    }
}

} // namespace
} // namespace mach
