/**
 * @file
 * Reference-model fuzzing of the VM system: a random sequence of
 * allocate / write / read / protect / copy / deallocate operations is
 * executed against both the simulated kernel and a simple host-side
 * model of what an address space should contain; every read is checked
 * against the model and every protection decision against the model's
 * rights. Parameterized over seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "base/perturb.hh"
#include "chk/explorer.hh"
#include "chk/vmgen.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

/** The reference model: per-page value and rights. */
struct ModelPage
{
    std::uint32_t value = 0; // Fresh anonymous memory reads zero.
    Prot prot = ProtReadWrite;
};

/** (seed, NUMA node count): every seed runs on the single-bus
 *  Multimax shape and on a 2-node machine, where allocations and
 *  shootdowns cross node boundaries. */
class VmFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

/**
 * The fuzz body, shared by the machine-shape arm and the
 * shootdown-policy arm: run the op sequence for @p seed on a kernel
 * built from @p config and check every observation against the
 * host-side model.
 */
void
runFuzzAgainstModel(const hw::MachineConfig &config, std::uint64_t seed)
{
    vm::Kernel kernel(config);
    kernel.start();

    bool finished = false;
    int ops_done = 0;

    kernel.spawnThread(nullptr, "fuzz-driver", [&](kern::Thread &drv) {
        vm::Task *task = kernel.createTask("fuzz");
        kern::Thread *body = kernel.spawnThread(
            task, "fuzz-body", [&](kern::Thread &self) {
                Rng rng(seed * 2654435761u + 1);
                std::map<VAddr, ModelPage> model;

                auto random_page = [&]() -> VAddr {
                    if (model.empty())
                        return 0;
                    auto it = model.begin();
                    std::advance(it, static_cast<long>(
                                         rng.below(model.size())));
                    return it->first;
                };

                for (int op = 0; op < 220; ++op, ++ops_done) {
                    const std::uint64_t kind = rng.below(100);
                    if (kind < 20 || model.empty()) {
                        // Allocate 1-5 pages.
                        const std::uint32_t pages =
                            static_cast<std::uint32_t>(rng.range(1, 5));
                        VAddr va = 0;
                        ASSERT_TRUE(kernel.vmAllocate(
                            self, *task, &va, pages * kPageSize, true));
                        for (std::uint32_t p = 0; p < pages; ++p)
                            model[va + p * kPageSize] = ModelPage{};
                    } else if (kind < 45) {
                        // Write a random page.
                        const VAddr page = random_page();
                        const auto value =
                            static_cast<std::uint32_t>(rng.next());
                        const bool ok = self.store32(page, value);
                        ModelPage &m = model.at(page);
                        if (protAllows(m.prot, ProtWrite)) {
                            ASSERT_TRUE(ok) << "page 0x" << std::hex
                                            << page;
                            m.value = value;
                        } else {
                            ASSERT_FALSE(ok);
                        }
                    } else if (kind < 70) {
                        // Read a random page and check the model.
                        const VAddr page = random_page();
                        std::uint32_t value = 0;
                        const bool ok = self.load32(page, &value);
                        const ModelPage &m = model.at(page);
                        if (protAllows(m.prot, ProtRead)) {
                            ASSERT_TRUE(ok);
                            ASSERT_EQ(value, m.value)
                                << "page 0x" << std::hex << page
                                << " op " << std::dec << op;
                        } else {
                            ASSERT_FALSE(ok);
                        }
                    } else if (kind < 83) {
                        // Re-protect a random page.
                        const VAddr page = random_page();
                        static const Prot kChoices[] = {
                            ProtNone, ProtRead, ProtReadWrite};
                        const Prot prot =
                            kChoices[rng.below(3)];
                        ASSERT_TRUE(kernel.vmProtect(
                            self, *task, page, kPageSize, prot));
                        model.at(page).prot = prot;
                    } else if (kind < 88) {
                        // Remap: move a page's contents to a fresh
                        // mapping (munmap + mmap + carry the value),
                        // exercising address reuse right after a
                        // deallocation's shootdown.
                        const VAddr page = random_page();
                        const ModelPage m = model.at(page);
                        std::uint32_t carried = 0;
                        const bool readable =
                            protAllows(m.prot, ProtRead);
                        if (readable)
                            ASSERT_TRUE(self.load32(page, &carried));
                        ASSERT_TRUE(kernel.vmDeallocate(
                            self, *task, page, kPageSize));
                        model.erase(page);
                        VAddr fresh = 0;
                        ASSERT_TRUE(kernel.vmAllocate(
                            self, *task, &fresh, kPageSize, true));
                        model[fresh] = ModelPage{};
                        if (readable) {
                            ASSERT_TRUE(self.store32(fresh, carried));
                            model.at(fresh).value = carried;
                        }
                    } else if (kind < 93) {
                        // Virtual-copy a random page; the copy gets
                        // the source's current value, then diverges.
                        const VAddr page = random_page();
                        const ModelPage &src = model.at(page);
                        if (!protAllows(src.prot, ProtRead))
                            continue;
                        VAddr copy = 0;
                        ASSERT_TRUE(kernel.vmCopy(self, *task, page,
                                                  kPageSize, &copy));
                        model[copy] =
                            ModelPage{src.value, src.prot};
                        // Write the copy; the source must not move.
                        if (protAllows(src.prot, ProtWrite)) {
                            const auto value =
                                static_cast<std::uint32_t>(rng.next());
                            ASSERT_TRUE(self.store32(copy, value));
                            model.at(copy).value = value;
                        }
                        std::uint32_t check = 0;
                        ASSERT_TRUE(self.load32(page, &check));
                        ASSERT_EQ(check, model.at(page).value);
                    } else {
                        // Deallocate a random page.
                        const VAddr page = random_page();
                        ASSERT_TRUE(kernel.vmDeallocate(
                            self, *task, page, kPageSize));
                        model.erase(page);
                        std::uint32_t value = 0;
                        ASSERT_FALSE(self.load32(page, &value));
                    }
                }

                // Full final sweep against the model.
                for (const auto &[page, m] : model) {
                    std::uint32_t value = 0;
                    const bool ok = self.load32(page, &value);
                    if (protAllows(m.prot, ProtRead)) {
                        ASSERT_TRUE(ok);
                        ASSERT_EQ(value, m.value)
                            << "final sweep page 0x" << std::hex
                            << page;
                    } else {
                        ASSERT_FALSE(ok);
                    }
                }
            });
        drv.join(*body);
        finished = true;
        kernel.machine().ctx().requestStop();
    });

    kernel.machine().run();
    ASSERT_TRUE(finished);
    EXPECT_EQ(ops_done, 220);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST_P(VmFuzz, MatchesReferenceModel)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 4;
    config.seed = seed;
    config.numa_nodes = std::get<1>(GetParam());
    runFuzzAgainstModel(config, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, VmFuzz,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                         88, 101, 112, 123, 134, 145,
                                         156, 167, 178),
                       ::testing::Values(1u, 2u)));

/**
 * The same reference-model fuzz under every shootdown-avoidance
 * policy: deferred flushes, coalesced IPIs, range invalidation and
 * reuse elision must all remain invisible to the VM semantics --
 * every read still matches the model, every protection decision
 * still matches the model's rights, and the end-of-run TLB-vs-PTE
 * audit still comes back clean.
 */
class VmFuzzPolicy
    : public ::testing::TestWithParam<
          std::tuple<hw::ShootdownPolicy, std::uint64_t>>
{
};

TEST_P(VmFuzzPolicy, MatchesReferenceModel)
{
    const hw::ShootdownPolicy policy = std::get<0>(GetParam());
    const std::uint64_t seed = std::get<1>(GetParam());
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 4;
    config.seed = seed;
    config.shootdown_policy = policy;
    // The TLB features each policy requires (MachineConfig::validate).
    if (policy == hw::ShootdownPolicy::LazyAsid)
        config.tlb_asid_tags = true;
    if (policy == hw::ShootdownPolicy::ReuseElide)
        config.tlb_software_reload = true;
    runFuzzAgainstModel(config, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, VmFuzzPolicy,
    ::testing::Combine(
        ::testing::Values(hw::ShootdownPolicy::LazyAsid,
                          hw::ShootdownPolicy::Batched,
                          hw::ShootdownPolicy::RangeFlush,
                          hw::ShootdownPolicy::ReuseElide),
        ::testing::Values(11, 55, 123, 178)),
    [](const ::testing::TestParamInfo<
        std::tuple<hw::ShootdownPolicy, std::uint64_t>> &info) {
        std::string name =
            hw::shootdownPolicyName(std::get<0>(info.param));
        std::replace(name.begin(), name.end(), '-', '_');
        return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// The same fuzz under memory pressure: the pageout daemon steals pages
// between operations, so reads exercise pagein and busy-page waits on
// top of the COW machinery. The model must still match exactly.
// ---------------------------------------------------------------------

class VmFuzzPaged : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(VmFuzzPaged, MatchesModelUnderPageout)
{
    const std::uint64_t seed = GetParam();
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 4;
    config.seed = seed;
    config.phys_frames = 192;
    config.pageout_low_frames = 120;
    config.pagein_latency = 1 * kMsec;
    config.pageout_latency = 1 * kMsec;
    vm::Kernel kernel(config);
    kernel.start();
    kernel.enablePageout();

    bool finished = false;
    kernel.spawnThread(nullptr, "paged-fuzz", [&](kern::Thread &drv) {
        vm::Task *task = kernel.createTask("paged");
        kern::Thread *body = kernel.spawnThread(
            task, "paged-body", [&](kern::Thread &self) {
                Rng rng(seed * 48271 + 3);
                std::map<VAddr, std::uint32_t> model;

                // Working set bigger than the pageout threshold
                // allows, so pages keep cycling to backing store.
                for (int i = 0; i < 90; ++i) {
                    VAddr va = 0;
                    ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                                  kPageSize, true));
                    const auto value =
                        static_cast<std::uint32_t>(rng.next());
                    ASSERT_TRUE(self.store32(va, value));
                    model[va] = value;
                }

                for (int op = 0; op < 150; ++op) {
                    auto it = model.begin();
                    std::advance(it, static_cast<long>(
                                         rng.below(model.size())));
                    if (rng.chance(0.35)) {
                        const auto value =
                            static_cast<std::uint32_t>(rng.next());
                        ASSERT_TRUE(self.store32(it->first, value));
                        it->second = value;
                    } else {
                        std::uint32_t value = 0;
                        ASSERT_TRUE(self.load32(it->first, &value));
                        ASSERT_EQ(value, it->second)
                            << "page 0x" << std::hex << it->first;
                    }
                    if (op % 10 == 0)
                        self.sleep(5 * kMsec); // Let the daemon work.
                }
            });
        drv.join(*body);
        finished = true;
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();
    ASSERT_TRUE(finished);
    EXPECT_GT(kernel.pager().pageouts, 0u)
        << "test produced no memory pressure";
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzzPaged,
                         ::testing::Values(7, 17, 27, 37));

// ---------------------------------------------------------------------
// Multi-task fork fuzz: a region is inherited across random forks with
// random Share/Copy/None inheritance; writes happen from random tasks.
// The model represents Share as an aliased value map and Copy as a
// snapshot, which is exactly the semantics Section 2 promises.
// ---------------------------------------------------------------------

class ForkFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ForkFuzz, InheritanceSemanticsMatchModel)
{
    const std::uint64_t seed = GetParam();
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 8;
    config.seed = seed;
    vm::Kernel kernel(config);
    kernel.start();

    constexpr unsigned kPages = 4;
    bool finished = false;

    kernel.spawnThread(nullptr, "fork-fuzz", [&](kern::Thread &drv) {
        Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);

        struct Node
        {
            vm::Task *task;
            // Share aliases the map; Copy snapshots it; None -> null.
            std::shared_ptr<std::map<unsigned, std::uint32_t>> values;
        };
        std::vector<Node> nodes;

        VAddr region = 0;
        {
            vm::Task *root = kernel.createTask("fz-root");
            kern::Thread *init = kernel.spawnThread(
                root, "init", [&](kern::Thread &self) {
                    ASSERT_TRUE(kernel.vmAllocate(
                        self, *root, &region, kPages * kPageSize,
                        true));
                    for (unsigned p = 0; p < kPages; ++p)
                        ASSERT_TRUE(self.store32(
                            region + p * kPageSize, 1000 + p));
                });
            drv.join(*init);
            auto values = std::make_shared<
                std::map<unsigned, std::uint32_t>>();
            for (unsigned p = 0; p < kPages; ++p)
                (*values)[p] = 1000 + p;
            nodes.push_back({root, values});
        }

        auto run_in = [&](vm::Task *task,
                          const std::function<void(kern::Thread &)>
                              &body) {
            kern::Thread *agent =
                kernel.spawnThread(task, "agent", body);
            drv.join(*agent);
        };

        for (int op = 0; op < 80; ++op) {
            const std::uint64_t kind = rng.below(100);
            Node &node = nodes[rng.below(nodes.size())];

            if (kind < 20 && nodes.size() < 5) {
                // Fork with a random inheritance on the region.
                static const vm::Inherit kInherits[] = {
                    vm::Inherit::Share, vm::Inherit::Copy,
                    vm::Inherit::None};
                const vm::Inherit inherit = kInherits[rng.below(3)];
                vm::Task *parent = node.task;
                auto parent_values = node.values;
                vm::Task *child = nullptr;
                run_in(parent, [&](kern::Thread &self) {
                    ASSERT_TRUE(kernel.vmInherit(
                        self, *parent, region, kPages * kPageSize,
                        inherit));
                    child = kernel.forkTask(self, *parent,
                                            "fz-child");
                });
                Node fresh{child, nullptr};
                if (parent_values != nullptr) {
                    if (inherit == vm::Inherit::Share) {
                        fresh.values = parent_values; // Aliased.
                    } else if (inherit == vm::Inherit::Copy) {
                        fresh.values = std::make_shared<
                            std::map<unsigned, std::uint32_t>>(
                            *parent_values); // Snapshot.
                    }
                }
                nodes.push_back(fresh);
            } else if (kind < 60) {
                // Write from this task.
                const unsigned page =
                    static_cast<unsigned>(rng.below(kPages));
                const auto value =
                    static_cast<std::uint32_t>(rng.next());
                run_in(node.task, [&](kern::Thread &self) {
                    const bool ok = self.store32(
                        region + page * kPageSize, value);
                    ASSERT_EQ(ok, node.values != nullptr);
                });
                if (node.values != nullptr)
                    (*node.values)[page] = value;
            } else {
                // Read from this task and check the model.
                const unsigned page =
                    static_cast<unsigned>(rng.below(kPages));
                run_in(node.task, [&](kern::Thread &self) {
                    std::uint32_t value = 0;
                    const bool ok = self.load32(
                        region + page * kPageSize, &value);
                    ASSERT_EQ(ok, node.values != nullptr);
                    if (ok) {
                        ASSERT_EQ(value, node.values->at(page))
                            << "task " << node.task->name() << " page "
                            << page << " seed " << seed;
                    }
                });
            }
        }
        finished = true;
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();
    ASSERT_TRUE(finished);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkFuzz,
                         ::testing::Values(3, 13, 23, 43, 53));

// ---------------------------------------------------------------------
// The device-enabled param point: the library generator (chk/vmgen.hh)
// with a DMA device attached to the fuzz task, on UMA and 2-node NUMA
// shapes. Each DMA read/write is predicted by the model and each
// revocation runs the device command / drain path; the trial runs
// under the stale-translation oracle via the explorer harness, which
// is also what auto-enrolls these shapes as checker scenarios.
// ---------------------------------------------------------------------

class VmFuzzDevice
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

TEST_P(VmFuzzDevice, MatchesModelWithDmaOps)
{
    setLogQuiet(true);
    chk::VmGenOptions o;
    o.seed = std::get<0>(GetParam());
    o.numa_nodes = std::get<1>(GetParam());
    if (o.numa_nodes > 1)
        o.ncpus = 2 * o.numa_nodes;
    o.devices = true;

    chk::Explorer explorer;
    const chk::TrialResult r =
        explorer.runTrial(chk::vmgenScenario(o), SchedulePerturber{});
    EXPECT_TRUE(r.completed) << "seed " << o.seed;
    EXPECT_TRUE(r.predicate_ok) << r.note;
    EXPECT_TRUE(r.coverage_ok) << r.note;
    EXPECT_EQ(r.violation_count, 0u)
        << (r.violations.empty() ? "" : r.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, VmFuzzDevice,
    ::testing::Combine(::testing::Values(3, 7, 21, 42),
                       ::testing::Values(1u, 2u)));

} // namespace
} // namespace mach
