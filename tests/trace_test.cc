/**
 * @file
 * Tests for the trace facility and its instrumentation of the
 * shootdown, pmap, and fault paths.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/consistency_tester.hh"
#include "base/trace.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

/** RAII capture of trace output with a chosen mask. */
class TraceCapture
{
  public:
    explicit TraceCapture(std::uint32_t mask)
    {
        trace::setMask(mask);
        trace::setSink([this](const std::string &line) {
            lines.push_back(line);
        });
    }

    ~TraceCapture()
    {
        trace::setMask(trace::None);
        trace::setSink(nullptr);
    }

    bool
    anyContains(const std::string &needle) const
    {
        for (const std::string &line : lines) {
            if (line.find(needle) != std::string::npos)
                return true;
        }
        return false;
    }

    std::vector<std::string> lines;
};

TEST(Trace, ParseCategories)
{
    EXPECT_EQ(trace::parseCategories("shootdown"), trace::Shootdown);
    EXPECT_EQ(trace::parseCategories("shootdown,vm"),
              trace::Shootdown | trace::Vm);
    EXPECT_EQ(trace::parseCategories("all"), trace::All);
    EXPECT_EQ(trace::parseCategories("nonsense"), trace::None);
    EXPECT_EQ(trace::parseCategories(""), trace::None);
}

TEST(Trace, MaskManipulation)
{
    trace::setMask(trace::None);
    EXPECT_FALSE(trace::enabled(trace::Vm));
    trace::enable(trace::Vm | trace::Pmap);
    EXPECT_TRUE(trace::enabled(trace::Vm));
    EXPECT_TRUE(trace::enabled(trace::Pmap));
    EXPECT_FALSE(trace::enabled(trace::Shootdown));
    trace::disable(trace::Vm);
    EXPECT_FALSE(trace::enabled(trace::Vm));
    trace::setMask(trace::None);
}

TEST(Trace, DisabledProducesNothing)
{
    TraceCapture capture(trace::None);
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 2, .warmup = 10 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(capture.lines.empty());
}

TEST(Trace, ShootdownPathEmitsInitiateAndRespond)
{
    TraceCapture capture(trace::Shootdown);
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 3, .warmup = 10 * kMsec});
    tester.execute(kernel);

    EXPECT_TRUE(capture.anyContains("initiates on user pmap"));
    EXPECT_TRUE(capture.anyContains("synchronized after"));
    EXPECT_TRUE(capture.anyContains("responds"));
}

TEST(Trace, VmCategoryCoversFaults)
{
    TraceCapture capture(trace::Vm);
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 2, .warmup = 10 * kMsec});
    tester.execute(kernel);

    EXPECT_TRUE(capture.anyContains("fault at"));
    EXPECT_TRUE(capture.anyContains("resolved"));
    // The children die of a genuine failed write fault.
    EXPECT_TRUE(capture.anyContains("FAILED"));
    // No shootdown lines leak into the vm category.
    EXPECT_FALSE(capture.anyContains("initiates on"));
}

TEST(Trace, PmapCategoryShowsLazySkips)
{
    TraceCapture capture(trace::Pmap);
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 4;
    vm::Kernel kernel(config);
    kernel.start();
    kernel.spawnThread(nullptr, "driver", [&](kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        // A protect over never-touched memory is skipped lazily.
        kern::Thread *t = kernel.spawnThread(
            task, "main", [&](kern::Thread &self) {
                VAddr va = 0;
                kernel.vmAllocate(self, *task, &va, 4 * kPageSize,
                                  true);
                kernel.vmProtect(self, *task, va, 4 * kPageSize,
                                 ProtRead);
            });
        drv.join(*t);
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();

    EXPECT_TRUE(capture.anyContains("lazy evaluation skips"));
}

TEST(Trace, LinesCarrySimulatedTimestamps)
{
    TraceCapture capture(trace::Shootdown);
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 2, .warmup = 10 * kMsec});
    tester.execute(kernel);

    ASSERT_FALSE(capture.lines.empty());
    // Every line begins with a right-aligned microsecond timestamp.
    for (const std::string &line : capture.lines)
        EXPECT_NE(line.find(" us ["), std::string::npos) << line;
}

} // namespace
} // namespace mach
