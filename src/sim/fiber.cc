#include "sim/fiber.hh"

#include <cstdint>

#include "base/logging.hh"

namespace mach::sim
{

namespace
{
/**
 * The fiber currently executing; null while in the scheduler. One slot
 * per host thread: the run farm (src/farm) drives one Machine per
 * worker thread, and each machine's fibers yield to the scheduler
 * context of the thread that resumed them, so the two threads never
 * share fiber state.
 */
thread_local Fiber *current_fiber = nullptr;
/** Resume point of the scheduler (main) context, set by resume(). */
thread_local std::jmp_buf scheduler_env;
} // namespace

Fiber::Fiber(std::string name, Entry entry, std::size_t stack_size)
    : name_(std::move(name)), entry_(std::move(entry)), stack_(stack_size)
{
    MACH_ASSERT(entry_ != nullptr);
}

Fiber::~Fiber()
{
    // Destroying a live, unfinished fiber would leak whatever it holds on
    // its stack; the simulation tears fibers down only after completion
    // or at whole-machine destruction where leaked stack state is inert.
}

Fiber *
Fiber::current()
{
    return current_fiber;
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto bits = (static_cast<std::uint64_t>(hi) << 32) |
                static_cast<std::uint64_t>(lo);
    reinterpret_cast<Fiber *>(static_cast<std::uintptr_t>(bits))->start();
}

void
Fiber::start()
{
    entry_();
    finished_ = true;
    yieldToScheduler();
    panic("resumed a finished fiber: %s", name_.c_str());
}

void
Fiber::resume()
{
    MACH_ASSERT(current_fiber == nullptr);
    MACH_ASSERT(!finished_);

    current_fiber = this;
    if (_setjmp(scheduler_env) == 0) {
        if (!started_) {
            // First entry: only ucontext can redirect execution onto
            // the fiber's own fresh stack. setcontext never returns --
            // the fiber comes back via the _longjmp in
            // yieldToScheduler, landing in the branch above.
            started_ = true;
            if (getcontext(&context_) != 0)
                panic("getcontext failed");
            context_.uc_stack.ss_sp = stack_.data();
            context_.uc_stack.ss_size = stack_.size();
            context_.uc_link = nullptr;
            auto bits = static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(this));
            makecontext(&context_,
                        reinterpret_cast<void (*)()>(&Fiber::trampoline),
                        2, static_cast<unsigned>(bits >> 32),
                        static_cast<unsigned>(bits & 0xffffffffu));
            setcontext(&context_);
            panic("setcontext into fiber %s failed", name_.c_str());
        }
        std::longjmp(env_, 1);
    }
    current_fiber = nullptr;
}

void
Fiber::yieldToScheduler()
{
    Fiber *self = current_fiber;
    MACH_ASSERT(self != nullptr);
    // The blocked-fiber frame below stays alive until the matching
    // _longjmp(env_) in resume() reenters it.
    if (_setjmp(self->env_) == 0)
        std::longjmp(scheduler_env, 1);
}

} // namespace mach::sim
