/**
 * @file
 * Tests of the shootdown algorithm against the Section 5.1 tester and
 * the whole-machine TLB consistency audit.
 */

#include <gtest/gtest.h>

#include "apps/consistency_tester.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

hw::MachineConfig
quietConfig()
{
    hw::MachineConfig config;
    setLogQuiet(true);
    return config;
}

TEST(ShootdownTester, MaintainsConsistencyWith4Children)
{
    hw::MachineConfig config = quietConfig();
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 4, .warmup = 20 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);

    EXPECT_TRUE(tester.consistent());
    // Exactly one user-pmap shootdown involving exactly k processors.
    ASSERT_EQ(result.analysis.user_initiator.events, 1u);
    EXPECT_EQ(result.analysis.user_initiator.procs.max(), 4.0);
    // Children really did increment before dying.
    for (std::uint32_t v : tester.finalCounters())
        EXPECT_GT(v, 0u);
    // And the machine ends TLB-consistent.
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST(ShootdownTester, DetectsInconsistencyWhenShootdownDisabled)
{
    hw::MachineConfig config = quietConfig();
    config.shootdown_enabled = false;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 4, .warmup = 20 * kMsec});
    tester.execute(kernel);

    // The simulated hardware is faithful enough that disabling the
    // algorithm produces a real inconsistency: stale writable entries
    // let children keep incrementing after the page went read-only.
    EXPECT_FALSE(tester.consistent());
    // Note the audit of TLBs against page tables cannot be asserted
    // inconsistent here: the stale entries' modify-bit writeback
    // *corrupts the PTE back to read-write* (the second Section 3
    // hazard), after which TLB and page table agree with each other --
    // and both disagree with what the VM layer asked for.
}

} // namespace
} // namespace mach
