/**
 * @file
 * Table 3: user pmap shootdown results (initiator side).
 *
 * The paper's table contains results solely from Camelot because the
 * other three applications did not cause any user shootdowns at all:
 * the Mach build shares no memory between user tasks, Parthenon's
 * only candidates (stack-guard reprotects) are lazily elided, and
 * Agora's shared memory is write-once. Camelot's aggressive
 * copy-on-write transaction machinery on a multi-threaded task yields
 * a mean of 588 +- 591 us over mostly 1-page operations.
 */

#include "bench_common.hh"

using namespace mach;
using namespace mach::bench;

int
main()
{
    setLogQuiet(true);
    std::printf("Table 3: user pmap shootdown results (initiator)\n");
    std::printf("(times in microseconds)\n\n");
    std::printf("%-12s %8s  %18s %8s %8s %8s\n", "application",
                "events", "mean+-std", "10th", "median", "90th");

    bool only_camelot = true;
    for (unsigned app = 0; app < 4; ++app) {
        hw::MachineConfig config;
        config.seed = 0x7ab1e300 + app;
        AppRun run = runApp(app, config);
        const xpr::ShootdownSummary &u =
            run.result.analysis.user_initiator;
        std::printf("%s\n",
                    xpr::formatRow(run.label, u, u.events < 16).c_str());
        if (app != 3 && u.events != 0)
            only_camelot = false;
        if (app == 3 && u.events > 0) {
            std::printf("    pages per shootdown: mean %.1f, max "
                        "%.0f\n",
                        u.pages.mean(), u.pages.max());
            std::printf("    processors shot at:  mean %.1f, max "
                        "%.0f\n",
                        u.procs.mean(), u.procs.max());
        }
        printRuntime(run);
    }

    std::printf("\nonly Camelot causes user shootdowns: %s (paper: "
                "yes)\n",
                only_camelot ? "yes" : "NO -- mismatch");
    std::printf("paper: Camelot mean 588+-591 us\n");
    return only_camelot ? 0 : 1;
}
