#include "xpr/analysis.hh"

#include <cstdio>

#include "base/logging.hh"

namespace mach::xpr
{

RunAnalysis
analyze(const Buffer &buffer)
{
    RunAnalysis out;
    out.overflowed = buffer.overflowed();
    if (out.overflowed) {
        warn("xpr buffer overflowed (capacity %zu); oldest records "
             "lost, analysis totals are truncated",
             buffer.capacity());
    }
    for (const Event &event : buffer.events()) {
        switch (event.kind) {
          case EventKind::ShootInitiator: {
            ShootdownSummary &summary = event.kernel_pmap
                                            ? out.kernel_initiator
                                            : out.user_initiator;
            ++summary.events;
            summary.time_usec.add(static_cast<double>(event.elapsed) /
                                  kUsec);
            summary.pages.add(event.pages);
            summary.procs.add(event.procs);
            break;
          }
          case EventKind::ShootResponder:
            ++out.responder.events;
            out.responder.time_usec.add(
                static_cast<double>(event.elapsed) / kUsec);
            break;
        }
    }
    return out;
}

std::string
formatRow(const std::string &label, const ShootdownSummary &summary,
          bool not_meaningful)
{
    char buf[256];
    if (summary.events == 0) {
        std::snprintf(buf, sizeof(buf), "%-12s %8llu %*s", label.c_str(),
                      0ull, 44, "-");
        return buf;
    }
    const Sample &t = summary.time_usec;
    if (not_meaningful) {
        std::snprintf(buf, sizeof(buf),
                      "%-12s %8llu  %8.0f+-%-8.0f %8s %8s %8s",
                      label.c_str(),
                      static_cast<unsigned long long>(summary.events),
                      t.mean(), t.stddev(), "NM", "NM", "NM");
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%-12s %8llu  %8.0f+-%-8.0f %8.0f %8.0f %8.0f",
                      label.c_str(),
                      static_cast<unsigned long long>(summary.events),
                      t.mean(), t.stddev(), t.percentile(0.1), t.median(),
                      t.percentile(0.9));
    }
    return buf;
}

} // namespace mach::xpr
