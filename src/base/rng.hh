/**
 * @file
 * Small deterministic pseudo-random number generator.
 *
 * Workload models and property tests need reproducible randomness that is
 * independent of the C++ standard library implementation, so experiments
 * replay bit-identically everywhere. xoshiro256** is used for its speed
 * and quality.
 */

#ifndef MACH_BASE_RNG_HH
#define MACH_BASE_RNG_HH

#include <cmath>
#include <cstdint>

#include "base/logging.hh"

namespace mach
{

/** Deterministic xoshiro256** generator with convenience helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /**
     * A generator on the named substream of @p seed. Components that
     * draw randomness alongside a workload (the explorer's probe
     * generator, auxiliary tooling) must use their own named stream:
     * folding the name into the seed decorrelates the streams even
     * when the raw seeds collide, so adding or reordering one
     * component's draws can never shift another's sequence.
     */
    Rng(std::uint64_t seed, const char *stream_name)
        : Rng(streamSeed(seed, stream_name))
    {
    }

    /** The effective seed of @p seed's @p stream_name substream. */
    static std::uint64_t
    streamSeed(std::uint64_t seed, const char *stream_name)
    {
        // FNV-1a over the name, then fold the seed in; the splitmix64
        // expansion in reseed() whitens the result.
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (const char *c = stream_name; *c != '\0'; ++c) {
            h ^= static_cast<unsigned char>(*c);
            h *= 0x100000001b3ull;
        }
        return h ^ (seed * 0x9e3779b97f4a7c15ull);
    }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        MACH_ASSERT(bound > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small bounds used by workloads.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        MACH_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Exponentially distributed value with the given mean. Used for
     * arrival processes in the workload models.
     */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace mach

#endif // MACH_BASE_RNG_HH
