/**
 * @file
 * Table 2: kernel pmap shootdown results (initiator side) for the four
 * evaluation applications.
 *
 * Paper values (times in microseconds):
 *            Mach       Parthenon   Agora       Camelot
 *   Events   7494       4           88          68
 *   Mean     1109+-1272 1395+-1431  1425+-1911  1641+-1994
 *
 * with distributions skewed towards high frequencies at low values
 * (90th percentile farther above the median than the 10th is below);
 * percentiles are "NM" (not meaningful) for Parthenon (too few events)
 * and Agora (bimodal: large setup-phase shootdowns vs small steady-
 * state ones).
 *
 * Absolute event counts here are smaller than the paper's because the
 * runs are scaled down; what should match is the shape: all four
 * applications shoot the kernel pmap, times are skewed low with long
 * tails, and Camelot's mean is the largest.
 */

#include "bench_common.hh"

using namespace mach;
using namespace mach::bench;

int
main()
{
    setLogQuiet(true);
    std::printf("Table 2: kernel pmap shootdown results (initiator)\n");
    std::printf("(times in microseconds; NM = not meaningful)\n\n");
    std::printf("%-12s %8s  %18s %8s %8s %8s\n", "application",
                "events", "mean+-std", "10th", "median", "90th");

    for (unsigned app = 0; app < 4; ++app) {
        hw::MachineConfig config;
        config.seed = 0x7ab1e200 + app;
        AppRun run = runApp(app, config);
        const xpr::ShootdownSummary &k =
            run.result.analysis.kernel_initiator;

        const bool nm = k.events < 16 || app == 2; // Agora is bimodal.
        std::printf("%s\n", xpr::formatRow(run.label, k, nm).c_str());

        if (app == 2 && k.events > 0) {
            // Split the bimodal Agora distribution the way the paper
            // discusses it: setup-phase events involve most of the
            // machine; steady-state events involve only a few busy
            // processors.
            Sample setup, steady;
            const auto &procs = k.procs.values();
            const auto &times = k.time_usec.values();
            for (std::size_t i = 0; i < procs.size(); ++i) {
                if (procs[i] >= 11)
                    setup.add(times[i]);
                else
                    steady.add(times[i]);
            }
            std::printf("    Agora setup phase   : %4zu events, "
                        "median %6.0f us (11-15 processors)\n",
                        setup.count(), setup.median());
            std::printf("    Agora steady state  : %4zu events, "
                        "median %6.0f us (1-4 processors)\n",
                        steady.count(), steady.median());
        }
        if (k.events >= 16) {
            std::printf("    skewed low (90th-median > median-10th): "
                        "%s\n",
                        k.time_usec.skewedLow() ? "yes (as in paper)"
                                                : "no");
        }
        printRuntime(run);
    }

    std::printf("\npaper: events 7494 / 4 / 88 / 68, means "
                "1109+-1272, 1395+-1431, 1425+-1911, 1641+-1994 us\n");
    return 0;
}
