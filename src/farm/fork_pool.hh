/**
 * @file
 * Fork-style snapshot workers for the run farm.
 *
 * A parked Machine cannot be cloned in-process: its fibers' ucontext
 * stacks are full of raw pointers into the original heap, so a deep
 * copy can never be fixed up. fork() sidesteps the problem -- the
 * child gets a copy-on-write image of the entire address space,
 * fiber stacks included, at effectively zero cost. Each perturbed
 * probe then resumes from the snapshot in its own child process and
 * ships a small serialized result back over a pipe, instead of
 * re-simulating the whole unperturbed warmup prefix from tick 0.
 *
 * Child discipline (see forkMany): the child must not touch shared
 * host resources -- it runs fn(i), writes the returned payload to its
 * pipe with raw write(), and leaves via _exit(0) so no atexit hooks,
 * stream flushes, or destructors of the parent's objects run twice.
 * The parent fflushes stdio before each fork so buffered output is
 * not duplicated into children.
 */

#ifndef MACH_FARM_FORK_POOL_HH
#define MACH_FARM_FORK_POOL_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace mach::farm
{

/**
 * Whether fork-based snapshots work here: a unix host, not running
 * under ThreadSanitizer (TSan instrumentation does not survive an
 * unsynchronized fork+resume). When false, callers fall back to
 * re-simulating each probe from tick 0 -- same results, more time.
 */
bool forkAvailable();

/**
 * Run fn(0..n-1) in child processes, at most @p jobs alive at once,
 * and return each child's payload string, indexed by i. A slot is
 * nullopt when the child died on a signal or nonzero exit (the
 * caller re-runs that probe serially). Must be called from the
 * thread that owns the Machine being snapshotted, with no other farm
 * threads running -- fork() only clones the calling thread.
 */
std::vector<std::optional<std::string>>
forkMany(std::size_t n, unsigned jobs,
         const std::function<std::string(std::size_t)> &fn);

} // namespace mach::farm

#endif // MACH_FARM_FORK_POOL_HH
