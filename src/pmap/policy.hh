/**
 * @file
 * Pluggable shootdown-avoidance policies (beyond the 1989 baseline).
 *
 * The Figure 1 algorithm shoots down every mapping change eagerly: one
 * queued action plus one directed IPI per processor using the pmap,
 * and a synchronous rendezvous before the change may proceed. Decades
 * of follow-on work attack exactly those costs. This layer factors the
 * avoidance decisions out of ShootdownController into a strategy
 * object so they can be selected per machine (MachineConfig::
 * shootdown_policy, `machsim --shootdown-policy`) and evaluated under
 * the same stale-translation oracle as the baseline:
 *
 *  - LazyAsid: on a TLB with address-space tags, a processor that is
 *    not currently running the victim space needs no IPI at all -- the
 *    initiator marks the space's entries there as dead (a deferred
 *    flush, the software analogue of bumping an ASID generation) and
 *    the flush happens when the space is next context-loaded on that
 *    processor.
 *  - Batched: pending invalidations aimed at a processor that is
 *    already servicing a shootdown merge into its in-progress pass
 *    instead of raising a fresh IPI, bounded by a coalescing window;
 *    queued actions for the same pmap merge into one range.
 *  - RangeFlush: models hardware with ranged invalidation: between the
 *    per-entry threshold and a crossover the responder invalidates
 *    exactly [start, end); beyond the crossover it flushes only the
 *    victim space -- never the whole TLB, so bystander spaces keep
 *    their entries.
 *  - ReuseElide: "skip TLB flushes for reused pages within mmap's"
 *    (arXiv 2409.10946): every TLB fill sets the PTE's reference bit,
 *    so a valid PTE with the bit still clear provably has no cached
 *    translation anywhere and its pages need no consistency action.
 *
 * Each hook defaults to "do what 1989 did", and the Baseline policy
 * overrides nothing, so configurations that never select a policy are
 * bit-identical to the pre-policy simulator (the pinned runDigest
 * goldens enforce this).
 */

#ifndef MACH_PMAP_POLICY_HH
#define MACH_PMAP_POLICY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "hw/machine_config.hh"
#include "hw/tlb.hh"

namespace mach::kern
{
class Cpu;
class Machine;
} // namespace mach::kern

namespace mach::pmap
{

class Pmap;
class ShootdownController;
struct ShootAction;

/**
 * Strategy interface consulted by ShootdownController and Pmap at the
 * points where a shootdown (or part of one) can be avoided. All
 * defaults preserve the baseline algorithm exactly.
 */
class ShootdownPolicy
{
  public:
    ShootdownPolicy(ShootdownController &shoot, kern::Machine &machine)
        : shoot_(shoot), machine_(machine)
    {}
    virtual ~ShootdownPolicy() = default;

    ShootdownPolicy(const ShootdownPolicy &) = delete;
    ShootdownPolicy &operator=(const ShootdownPolicy &) = delete;

    virtual hw::ShootdownPolicy kind() const = 0;
    const char *name() const { return hw::shootdownPolicyName(kind()); }

    /**
     * Phase-1 hook, called for each prospective target before its
     * action is queued. Returning true means the target needs neither
     * a queued action, an IPI, nor synchronization for this shootdown
     * (LazyAsid: the flush was deferred to the target's next context
     * load of the space).
     */
    virtual bool deferTarget(kern::Cpu &self, CpuId target, Pmap &pmap,
                             Vpn start, Vpn end)
    {
        (void)self;
        (void)target;
        (void)pmap;
        (void)start;
        (void)end;
        return false;
    }

    /**
     * Send hook, called per directed IPI after the action is queued
     * and the usual pending-interrupt dedup. Returning true elides the
     * IPI (Batched: the target is mid-respond and its service loop is
     * guaranteed to re-check the action-needed flag it already sees).
     */
    virtual bool elideIpi(kern::Cpu &self, CpuId target)
    {
        (void)self;
        (void)target;
        return false;
    }

    /**
     * Queue hook, called with the target's action lock held before a
     * new action is appended. Returning true means the request was
     * folded into an existing queued action (Batched range merge).
     */
    virtual bool mergeQueued(std::vector<ShootAction> &queue, Pmap &pmap,
                             Vpn start, Vpn end)
    {
        (void)queue;
        (void)pmap;
        (void)start;
        (void)end;
        return false;
    }

    /**
     * Local-invalidation hook. Returning true means the policy applied
     * its own invalidation (and charged its cost) in place of the
     * baseline per-entry-vs-full-flush rule (RangeFlush).
     */
    virtual bool invalidate(kern::Cpu &cpu, hw::SpaceId space, Vpn start,
                            Vpn end)
    {
        (void)cpu;
        (void)space;
        (void)start;
        (void)end;
        return false;
    }

    /**
     * Initiator pre-check, called by Pmap::updateMappings after the
     * lazy-evaluation check decided consistency actions are needed.
     * Returning true proves no TLB anywhere caches [start, end) so the
     * whole consistency step -- local invalidation and shootdown --
     * can be skipped (ReuseElide).
     */
    virtual bool reuseElideCheck(kern::Cpu &self, Pmap &pmap, Vpn start,
                                 Vpn end)
    {
        (void)self;
        (void)pmap;
        (void)start;
        (void)end;
        return false;
    }

    /**
     * Context-load hook, called from Pmap::activate before the pmap
     * becomes current on @p cpu (LazyAsid applies any deferred flush
     * here, stalling first if the space is mid-update).
     */
    virtual void onContextLoad(kern::Cpu &cpu, Pmap &pmap)
    {
        (void)cpu;
        (void)pmap;
    }

    // ---- Statistics (host-side; deliberately not part of runDigest,
    // like cross_node_ipis, so Baseline stays bit-identical) ----------

    /** Directed IPIs skipped (target already servicing / deferred). */
    std::uint64_t ipis_elided = 0;
    /** LazyAsid: flushes pushed to the target's next context load. */
    std::uint64_t flushes_deferred = 0;
    /** LazyAsid: deferred flushes actually applied at context load. */
    std::uint64_t deferred_flushes_applied = 0;
    /** Batched: actions folded into an already-queued range. */
    std::uint64_t actions_merged = 0;
    /** RangeFlush: ranged invalidations above the per-entry threshold. */
    std::uint64_t range_invalidates = 0;
    /** RangeFlush: single-space flushes beyond the crossover. */
    std::uint64_t full_space_flushes = 0;
    /** ReuseElide: consistency actions skipped by the ref-bit proof. */
    std::uint64_t reuse_elisions = 0;

  protected:
    ShootdownController &shoot_;
    kern::Machine &machine_;
};

/** Build the policy selected by the machine's configuration. */
std::unique_ptr<ShootdownPolicy>
makeShootdownPolicy(ShootdownController &shoot, kern::Machine &machine);

} // namespace mach::pmap

#endif // MACH_PMAP_POLICY_HH
