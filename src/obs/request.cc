#include "obs/request.hh"

namespace mach::obs
{

const char *
reqComponentName(ReqComponent component)
{
    switch (component) {
      case ReqComponent::Compute: return "compute";
      case ReqComponent::Fault: return "fault";
      case ReqComponent::Walk: return "walk";
      case ReqComponent::IpiPost: return "ipi_post";
      case ReqComponent::ResponderWait: return "responder_wait";
      case ReqComponent::Drain: return "drain";
    }
    return "?";
}

void
recordRequest(Metrics &metrics, const RequestSlot &slot, Tick total)
{
    metrics.histogram("serve.request_us").record(total / kUsec);
    for (unsigned c = 0; c < kReqComponents; ++c) {
        const char *name =
            reqComponentName(static_cast<ReqComponent>(c));
        metrics.histogram(std::string("serve.") + name + "_us")
            .record(slot.components()[c] / kUsec);
    }
}

} // namespace mach::obs
