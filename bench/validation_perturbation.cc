/**
 * @file
 * Section 6.1: measurement validation.
 *
 * Does the xpr instrumentation perturb the applications it measures?
 * The paper chose the most perturbation-sensitive application --
 * Parthenon, a nondeterministic workpile search -- disabled lazy
 * evaluation (to maximize the number of instrumented events), ran it
 * five times with and without instrumentation, and found a runtime
 * difference of about 1.5%, well below the 8-10% perturbation that
 * other effects (timer interrupts) already produce.
 */

#include "bench_common.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

Sample
runtimes(bool instrumented, unsigned runs)
{
    Sample sample;
    for (unsigned i = 0; i < runs; ++i) {
        hw::MachineConfig config;
        config.seed = 0x6a11da7e + i;
        config.lazy_evaluation = false; // Maximize instrumented events.
        config.xpr_enabled = instrumented;

        vm::Kernel kernel(config);
        apps::Parthenon::Params params;
        params.runs = 1;
        params.seed = config.seed;
        apps::Parthenon app(params);
        const apps::WorkloadResult result = app.execute(kernel);
        sample.add(static_cast<double>(result.virtual_runtime) / kMsec);
    }
    return sample;
}

} // namespace

int
main()
{
    constexpr unsigned kRuns = 5;
    setLogQuiet(true);

    std::printf("Section 6.1: measurement validation (Parthenon, lazy "
                "evaluation disabled)\n\n");
    const Sample with = runtimes(true, kRuns);
    const Sample without = runtimes(false, kRuns);

    std::printf("runtime with xpr instrumentation   : %8.1f +- %.1f "
                "ms (%u runs)\n",
                with.mean(), with.stddev(), kRuns);
    std::printf("runtime without xpr instrumentation: %8.1f +- %.1f "
                "ms (%u runs)\n",
                without.mean(), without.stddev(), kRuns);

    const double perturbation =
        without.mean() > 0
            ? 100.0 * (with.mean() - without.mean()) / without.mean()
            : 0.0;
    const double natural =
        without.mean() > 0 ? 100.0 * without.stddev() / without.mean()
                           : 0.0;
    std::printf("\ninstrumentation perturbation: %+.2f%% (paper: "
                "~1.5%%, not statistically significant)\n",
                perturbation);
    std::printf("natural run-to-run variation: %.2f%% of runtime "
                "(paper: 8-10%% from timer interrupts etc.)\n",
                natural);
    std::printf("conclusion: the instrumented kernel is "
                "representative of uninstrumented behaviour\n");
    return 0;
}
