/**
 * @file
 * The "Agora" evaluation application: a double-ended wavefront-based
 * shortest-path search running 15-way parallel (Section 5.2).
 *
 * Agora uses shared write-once memory for communication among the
 * workers: during the setup phase the workers populate shared regions
 * which the master then reprotects read-only while all 15 workers are
 * still running -- the large (11-15 processor) shootdowns of the
 * paper's bimodal Agora distribution. Once set up, the search can run
 * again and again without causing any large shootdowns; the remaining
 * small (1-4 processor) events happen between runs while most
 * processors are idle.
 */

#ifndef MACH_APPS_AGORA_HH
#define MACH_APPS_AGORA_HH

#include "apps/workload.hh"
#include "base/rng.hh"

namespace mach::apps
{

/** Shared-memory shortest-path search model. */
class Agora : public Workload
{
  public:
    struct Params
    {
        unsigned workers = 15;
        /** Successive search runs after setup (the paper used five). */
        unsigned runs = 5;
        /** Write-once shared regions built during setup. */
        unsigned regions = 3;
        /** Pages per shared region. */
        unsigned region_pages = 45;
        std::uint64_t seed = 0xa60a;
    };

    explicit Agora(Params params) : params_(params) {}

    std::string name() const override { return "agora"; }

    void run(vm::Kernel &kernel, kern::Thread &driver) override;

    std::uint64_t waves_processed = 0;

  private:
    Params params_;
};

} // namespace mach::apps

#endif // MACH_APPS_AGORA_HH
