#include "chk/explorer.hh"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "base/rng.hh"
#include "chk/corpus.hh"
#include "chk/oracle.hh"
#include "obs/recorder.hh"
#include "obs/signature.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach::chk
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

/** Delta ladder for the systematic sweep: one TLB-invalidate-scale
 *  nudge up to a schedule-quantum-scale shove. */
constexpr Tick kDeltaLadder[] = {30 * kUsec, 120 * kUsec, 500 * kUsec,
                                 1500 * kUsec};
constexpr unsigned kDeltaLadderSize = 4;

/** Liveness bound for one perturbed run: the unperturbed bound plus
 *  every injected delay. A delay-only perturbation can stretch a run
 *  by at most the sum of its extras, so exceeding this bound means
 *  some shootdown (or join on one) genuinely failed to terminate. */
Tick
perturbedBound(const Scenario &scenario, const SchedulePerturber &p)
{
    Tick bound = scenario.bound;
    for (const PerturbItem &item : p.items())
        bound += item.extra;
    return bound;
}

/**
 * One trial's machinery: kernel, oracle, workload -- everything that
 * exists from launch to verdict. Kept in one place so the serial
 * path (construct, run, finish) and the snapshot path (construct,
 * run the shared prefix, fork, resume, finish in the child) assemble
 * TrialResults with byte-identical rules.
 */
struct TrialHarness
{
    vm::Kernel kernel;
    Oracle oracle;
    ScenarioState state;

    explicit TrialHarness(const Scenario &scenario,
                          const SchedulePerturber *perturber = nullptr)
        : kernel(scenario.config), oracle(kernel)
    {
        if (perturber != nullptr)
            kernel.machine().setPerturber(perturber);
        scenario.launch(kernel, &state);
    }

    /** Arm the coverage signal: record everything so finish() can
     *  extract the interleaving signatures. Timing-neutral. */
    void
    enableSigning()
    {
        kernel.machine().recorder().enable();
    }

    /** Judge the finished run; @p events_fired is the run() total. */
    TrialResult
    finish(std::uint64_t events_fired)
    {
        TrialResult out;
        oracle.finalCheck();
        kernel.machine().setPerturber(nullptr);

        out.events_fired = events_fired;
        out.completed = state.finished;
        out.predicate_ok = state.predicate_ok;
        out.coverage_ok = state.coverage_ok;
        out.note = state.note;
        out.violations = oracle.violations();
        out.violation_count = oracle.violationCount();
        out.bus_accesses = kernel.machine().busAccessTotal();
        out.end_time = kernel.machine().now();

        const pmap::ShootdownController &shoot =
            kernel.pmaps().shoot();
        std::uint64_t h = kFnvOffset;
        h = fold(h, out.end_time);
        h = fold(h, out.events_fired);
        h = fold(h, out.bus_accesses);
        h = fold(h, shoot.initiated);
        h = fold(h, shoot.interrupts_sent);
        h = fold(h, shoot.responder_passes);
        h = fold(h, shoot.idle_drains);
        h = fold(h, shoot.queue_overflows);
        h = fold(h, shoot.remote_invalidates);
        h = fold(h, out.violation_count);
        out.digest = h;

        // The coverage signal rides along whenever the full event
        // stream was recorded (ring mode would have dropped windows).
        const obs::Recorder &rec = kernel.machine().recorder();
        if (rec.enabled() && !rec.ringMode())
            out.signatures = obs::interleavingSignatures(rec);
        return out;
    }
};

// ---- TrialResult wire form (fork-snapshot children -> parent) -------

void
appendU64(std::string &s, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool
readU64(const std::string &s, std::size_t *pos, std::uint64_t *v)
{
    if (*pos + 8 > s.size())
        return false;
    std::uint64_t out = 0;
    for (unsigned i = 0; i < 8; ++i)
        out |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(s[*pos + i]))
               << (8 * i);
    *pos += 8;
    *v = out;
    return true;
}

bool
readString(const std::string &s, std::size_t *pos, std::string *out)
{
    std::uint64_t len = 0;
    if (!readU64(s, pos, &len) || *pos + len > s.size())
        return false;
    out->assign(s, *pos, static_cast<std::size_t>(len));
    *pos += static_cast<std::size_t>(len);
    return true;
}

constexpr std::uint64_t kTrialWireMagic = 0x4d464152'5452494cull;

std::string
encodeTrial(const TrialResult &r)
{
    std::string s;
    appendU64(s, kTrialWireMagic);
    appendU64(s, r.completed ? 1 : 0);
    appendU64(s, r.predicate_ok ? 1 : 0);
    appendU64(s, r.coverage_ok ? 1 : 0);
    appendU64(s, r.violation_count);
    appendU64(s, r.events_fired);
    appendU64(s, r.bus_accesses);
    appendU64(s, r.end_time);
    appendU64(s, r.digest);
    appendU64(s, r.note.size());
    s += r.note;
    appendU64(s, r.violations.size());
    for (const std::string &v : r.violations) {
        appendU64(s, v.size());
        s += v;
    }
    appendU64(s, r.signatures.size());
    for (const std::uint64_t sig : r.signatures)
        appendU64(s, sig);
    return s;
}

bool
decodeTrial(const std::string &s, TrialResult *out)
{
    std::size_t pos = 0;
    std::uint64_t magic = 0, flag = 0, count = 0;
    if (!readU64(s, &pos, &magic) || magic != kTrialWireMagic)
        return false;
    if (!readU64(s, &pos, &flag))
        return false;
    out->completed = flag != 0;
    if (!readU64(s, &pos, &flag))
        return false;
    out->predicate_ok = flag != 0;
    if (!readU64(s, &pos, &flag))
        return false;
    out->coverage_ok = flag != 0;
    if (!readU64(s, &pos, &out->violation_count) ||
        !readU64(s, &pos, &out->events_fired) ||
        !readU64(s, &pos, &out->bus_accesses) ||
        !readU64(s, &pos, &out->end_time) ||
        !readU64(s, &pos, &out->digest))
        return false;
    if (!readString(s, &pos, &out->note))
        return false;
    if (!readU64(s, &pos, &count) || count > 4096)
        return false;
    out->violations.clear();
    out->violations.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        std::string v;
        if (!readString(s, &pos, &v))
            return false;
        out->violations.push_back(std::move(v));
    }
    if (!readU64(s, &pos, &count) || count > (1u << 20))
        return false;
    out->signatures.clear();
    out->signatures.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t sig = 0;
        if (!readU64(s, &pos, &sig))
            return false;
        out->signatures.push_back(sig);
    }
    return pos == s.size();
}

// ---- Fork-snapshot batch runner -------------------------------------

/** Slack between the park watermark and the earliest perturbed index:
 *  one event body may insert many events or issue many bus accesses
 *  before runGuarded re-checks, so park comfortably early. */
/** Flight-recorder ring depth for the minimized-reproducer replay. */
constexpr std::size_t kFlightRingCapacity = 16384;

constexpr std::uint64_t kSnapshotMargin = 512;

/**
 * Try to run @p probes off one fork-style prefix snapshot: simulate
 * the batch's shared unperturbed prefix once, park it, then fork one
 * child per probe to install its perturber and resume. Fills
 * results[i]/done[i] for every probe it completes; probes it cannot
 * serve (park failed, a directive landed inside the prefix, a child
 * died) are left for the caller's full-run fallback. Never changes a
 * result: a child's TrialResult is byte-identical to runTrial()'s.
 */
void
runSnapshotBatch(const Scenario &scenario,
                 const std::vector<SchedulePerturber> &probes,
                 unsigned jobs, std::uint64_t snapshot_floor,
                 bool with_signatures,
                 std::vector<TrialResult> &results,
                 std::vector<char> &done)
{
    constexpr std::uint64_t kNone = ~std::uint64_t{0};
    std::uint64_t min_eseq = kNone;
    std::uint64_t min_bidx = kNone;
    for (const SchedulePerturber &p : probes)
        for (const PerturbItem &item : p.items()) {
            if (item.bus)
                min_bidx = std::min(min_bidx, item.index);
            else
                min_eseq = std::min(min_eseq, item.index);
        }
    if (min_eseq == kNone && min_bidx == kNone)
        return; // all-baseline batch: nothing a snapshot could skip
    const auto watermark = [](std::uint64_t lo) {
        if (lo == kNone)
            return kNone;
        return lo > kSnapshotMargin ? lo - kSnapshotMargin
                                    : std::uint64_t{0};
    };
    const std::uint64_t ew = watermark(min_eseq);
    const std::uint64_t bw = watermark(min_bidx);
    if (ew == 0 || bw == 0)
        return; // a directive fires too early to park before it

    TrialHarness harness(scenario);
    // Signed batches record the shared prefix once; every fork child
    // inherits the recorded events and appends its own, so a child's
    // signature list matches a full signed run of the same probe.
    if (with_signatures)
        harness.enableSigning();
    const kern::Machine::PrefixRun prefix =
        harness.kernel.machine().runPrefix(ew, bw, scenario.bound);
    if (!prefix.parked || prefix.events < snapshot_floor)
        return; // run completed (must not resume) or prefix too thin
                // (FarmOptions::snapshot_floor, default 4096)

    const std::uint64_t park_events =
        harness.kernel.machine().ctx().queue().scheduledCount();
    const std::uint64_t park_bus =
        harness.kernel.machine().busAccessTotal();

    // The park point lands at the first event boundary past a
    // watermark, which may overshoot: re-check each probe's
    // directives against where the prefix actually stopped.
    std::vector<std::size_t> valid;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        bool ok = true;
        for (const PerturbItem &item : probes[i].items()) {
            const std::uint64_t floor =
                item.bus ? park_bus : park_events;
            if (item.index <= floor) {
                ok = false;
                break;
            }
        }
        if (ok)
            valid.push_back(i);
    }
    if (valid.empty())
        return;

    const std::vector<std::optional<std::string>> payloads =
        farm::forkMany(valid.size(), jobs, [&](std::size_t k) {
            const SchedulePerturber &p = probes[valid[k]];
            harness.kernel.machine().setPerturber(&p);
            const std::uint64_t fired = harness.kernel.machine().run(
                perturbedBound(scenario, p));
            return encodeTrial(harness.finish(prefix.events + fired));
        });
    for (std::size_t k = 0; k < valid.size(); ++k) {
        if (!payloads[k])
            continue;
        TrialResult r;
        if (decodeTrial(*payloads[k], &r)) {
            results[valid[k]] = std::move(r);
            done[valid[k]] = 1;
        }
    }
}

// ---- Probe generation -----------------------------------------------

/**
 * Fixed wave width for coverage-guided mutation waves. Mutation
 * generation reads the corpus as it stood at the wave boundary, so
 * the width must not depend on the farm shape -- that is what keeps
 * coverage campaigns as-if-serial at any --jobs setting.
 */
constexpr std::size_t kCoverageWave = 8;

/** One blind multi-delay probe (the classic random phase). */
SchedulePerturber
randomProbe(Rng &rng, const ExploreOptions &opt, std::uint64_t e_lo,
            std::uint64_t e_hi, std::uint64_t b_lo, std::uint64_t b_hi)
{
    SchedulePerturber p;
    const unsigned k =
        1 + static_cast<unsigned>(rng.below(opt.max_delays));
    for (unsigned j = 0; j < k; ++j) {
        const Tick extra =
            opt.min_extra + rng.below(opt.max_extra - opt.min_extra + 1);
        if (rng.chance(0.15))
            p.delayBusAccess(b_lo + rng.below(b_hi - b_lo + 1), extra);
        else
            p.delayEvent(e_lo + rng.below(e_hi - e_lo + 1), extra);
    }
    return p;
}

/**
 * One coverage-guided probe: mutate a corpus entry (biased toward
 * entries that opened more signature buckets) with one of the three
 * operators -- directive splice, delta scale, seq shift -- falling
 * back to a blind probe now and then (and always while the corpus is
 * still empty) so the campaign keeps a global exploration floor.
 */
SchedulePerturber
mutateProbe(Rng &rng, const std::vector<const CorpusEntry *> &pool,
            const ExploreOptions &opt, std::uint64_t e_lo,
            std::uint64_t e_hi, std::uint64_t b_lo, std::uint64_t b_hi)
{
    if (pool.empty() || rng.chance(0.1))
        return randomProbe(rng, opt, e_lo, e_hi, b_lo, b_hi);

    // Tournament pick: novelty-weighted without a weight table.
    const CorpusEntry *a = pool[rng.below(pool.size())];
    const CorpusEntry *b = pool[rng.below(pool.size())];
    const CorpusEntry *entry = a->new_buckets >= b->new_buckets ? a : b;
    SchedulePerturber base;
    if (!SchedulePerturber::parse(entry->schedule, &base, nullptr) ||
        base.empty())
        return randomProbe(rng, opt, e_lo, e_hi, b_lo, b_hi);
    std::vector<PerturbItem> items = base.items();

    switch (rng.below(3)) {
      case 0: { // directive splice: union with another entry's items
        const CorpusEntry *other = pool[rng.below(pool.size())];
        SchedulePerturber donor;
        if (SchedulePerturber::parse(other->schedule, &donor,
                                     nullptr)) {
            for (const PerturbItem &item : donor.items()) {
                if (rng.chance(0.5))
                    items.push_back(item);
            }
        }
        const std::size_t cap =
            std::max<std::size_t>(2, std::size_t{opt.max_delays} * 2);
        while (items.size() > cap)
            items.erase(items.begin() + static_cast<std::ptrdiff_t>(
                                            rng.below(items.size())));
        break;
      }
      case 1: { // delta scale: grow or shrink one delay
        PerturbItem &item = items[rng.below(items.size())];
        switch (rng.below(4)) {
          case 0:
            item.extra = std::max<Tick>(1, item.extra / 2);
            break;
          case 1:
            item.extra *= 2;
            break;
          case 2:
            item.extra *= 4;
            break;
          default:
            // Overdrive: resample from the band past the blind
            // probes' max_extra cap. Hazard windows wider than any
            // single protocol phase (a whole revoke round, a full
            // writer beat) are only reachable from here.
            item.extra =
                opt.max_extra + rng.below(3 * opt.max_extra + 1);
            break;
        }
        item.extra = std::min<Tick>(item.extra, 4 * opt.max_extra);
        break;
      }
      default: { // seq shift: local search around one directive
        PerturbItem &item = items[rng.below(items.size())];
        const std::uint64_t lo = item.bus ? b_lo : e_lo;
        const std::uint64_t hi = item.bus ? b_hi : e_hi;
        switch (rng.below(4)) {
          case 0: // geometric funnel toward the run's early events:
                  // warmup-adjacent hazards sit at small sequence
                  // numbers a +-48 jitter never reaches from the
                  // middle of the index space
            item.index = std::max(lo, item.index / 2);
            break;
          case 1: // and the mirror, toward teardown
            item.index = std::min(hi, item.index * 2);
            break;
          default: {
            const std::uint64_t delta = 1 + rng.below(48);
            if (rng.chance(0.5))
                item.index = std::min(hi, item.index + delta);
            else
                item.index =
                    item.index > lo + delta ? item.index - delta : lo;
            break;
          }
        }
        break;
      }
    }
    return SchedulePerturber::fromItems(items);
}

} // namespace

TrialResult
Explorer::runTrial(const Scenario &scenario,
                   const SchedulePerturber &perturber) const
{
    TrialHarness harness(scenario, &perturber);
    const std::uint64_t fired = harness.kernel.machine().run(
        perturbedBound(scenario, perturber));
    return harness.finish(fired);
}

TrialResult
Explorer::runTrialSigned(const Scenario &scenario,
                         const SchedulePerturber &perturber) const
{
    TrialHarness harness(scenario, &perturber);
    harness.enableSigning();
    const std::uint64_t fired = harness.kernel.machine().run(
        perturbedBound(scenario, perturber));
    return harness.finish(fired);
}

TrialResult
Explorer::runTrialRecorded(const Scenario &scenario,
                           const SchedulePerturber &perturber,
                           std::string *trace_json,
                           std::size_t ring_capacity) const
{
    TrialHarness harness(scenario, &perturber);
    obs::Recorder &rec = harness.kernel.machine().recorder();
    if (ring_capacity != 0)
        rec.enableRing(ring_capacity);
    else
        rec.enable();
    const std::uint64_t fired = harness.kernel.machine().run(
        perturbedBound(scenario, perturber));
    TrialResult out = harness.finish(fired);
    if (trace_json != nullptr)
        *trace_json = rec.toJson();
    return out;
}

std::vector<TrialResult>
Explorer::runTrials(const Scenario &scenario,
                    const std::vector<SchedulePerturber> &probes,
                    bool with_signatures) const
{
    std::vector<TrialResult> results(probes.size());
    std::vector<char> done(probes.size(), 0);

    if (farm_.snapshots && farm::forkAvailable() && probes.size() >= 2)
        runSnapshotBatch(scenario, probes, farm_.jobs,
                         farm_.snapshot_floor, with_signatures,
                         results, done);

    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        if (done[i])
            continue;
        jobs.push_back([this, &scenario, &probes, &results,
                        with_signatures, i] {
            results[i] = with_signatures
                             ? runTrialSigned(scenario, probes[i])
                             : runTrial(scenario, probes[i]);
        });
    }
    farm::runMany(std::move(jobs), farm_.jobs);
    return results;
}

ExploreResult
Explorer::explore(const Scenario &scenario, const ExploreOptions &opt)
{
    ExploreResult res;

    // The campaign memory: opt.corpus when the caller keeps one
    // (persistent campaigns, cross-campaign dedup), else a private
    // in-memory corpus for coverage mode, else none (classic blind
    // exploration, bit-identical to what it always did).
    Corpus local;
    Corpus *corpus =
        opt.corpus != nullptr ? opt.corpus
                              : (opt.coverage_guided ? &local : nullptr);
    const bool dedup = corpus != nullptr;
    const bool sign = opt.coverage_guided;

    res.baseline = sign ? runTrialSigned(scenario, SchedulePerturber{})
                        : runTrial(scenario, SchedulePerturber{});
    ++res.trials;
    if (res.baseline.failed() ||
        (opt.check_coverage && !res.baseline.coverage_ok)) {
        res.baseline_failed = true;
        say("baseline failed: " + scenario.name + " " +
            res.baseline.note);
        return res;
    }
    if (sign) {
        corpus->markTried(scenario.name, "");
        CorpusEntry entry;
        entry.scenario = scenario.name;
        entry.signatures = res.baseline.signatures;
        entry.digest = res.baseline.digest;
        entry.trial = res.trials;
        if (corpus->admit(std::move(entry)) != 0)
            ++res.coverage_novel;
    }

    const std::uint64_t n_events =
        std::max<std::uint64_t>(1, res.baseline.events_fired);
    const std::uint64_t n_bus =
        std::max<std::uint64_t>(1, res.baseline.bus_accesses);

    // Probe index window (defaults cover the whole run).
    const auto windowed = [](std::uint64_t n, double lo, double hi) {
        std::uint64_t first =
            1 + static_cast<std::uint64_t>(lo * static_cast<double>(n));
        std::uint64_t last =
            static_cast<std::uint64_t>(hi * static_cast<double>(n));
        first = std::min(first, n);
        last = std::min(std::max(last, first), n);
        return std::pair<std::uint64_t, std::uint64_t>{first, last};
    };
    const auto [e_lo, e_hi] =
        windowed(n_events, opt.sweep_lo, opt.sweep_hi);
    const auto [b_lo, b_hi] = windowed(n_bus, opt.sweep_lo, opt.sweep_hi);

    // Probe generation is split from execution so batches can be
    // farmed; the lists are exactly the schedules the serial loops
    // used to produce, in the same order.

    // Phase 1: bounded-systematic sweep. One delayed event per
    // probe, seq striding across the window, cycling the delta
    // ladder -- the swap-window enumeration.
    std::vector<SchedulePerturber> probes;
    if (opt.systematic_budget != 0) {
        const std::uint64_t span = e_hi - e_lo + 1;
        const std::uint64_t stride =
            std::max<std::uint64_t>(1, span / opt.systematic_budget);
        unsigned used = 0;
        for (std::uint64_t seq = e_lo;
             seq <= e_hi && used < opt.systematic_budget;
             seq += stride, ++used) {
            SchedulePerturber p;
            p.delayEvent(seq, kDeltaLadder[used % kDeltaLadderSize]);
            if (dedup &&
                !corpus->markTried(scenario.name, p.format())) {
                ++res.duplicate_probes_skipped;
                continue;
            }
            probes.push_back(std::move(p));
        }
    }
    const std::size_t n_systematic = probes.size();

    // Phase 2 (blind mode): randomized multi-delay probes over events
    // and bus accesses. Drawn from the explorer's own named stream --
    // probe generation shares a seed with nothing else, so scenario
    // workloads keep their schedules no matter how many probes run.
    // Dedup (when a corpus is attached) filters *after* generation, so
    // the draw sequence -- and therefore every surviving schedule --
    // is unchanged from a corpus-less campaign.
    if (!opt.coverage_guided) {
        Rng rng(opt.seed, "chk.explorer.probes");
        for (unsigned t = 0; t < opt.random_budget; ++t) {
            SchedulePerturber p =
                randomProbe(rng, opt, e_lo, e_hi, b_lo, b_hi);
            if (dedup &&
                !corpus->markTried(scenario.name, p.format())) {
                ++res.duplicate_probes_skipped;
                continue;
            }
            probes.push_back(std::move(p));
        }
    }

    // Execute in waves. Accounting is as-if-serial regardless of the
    // farm shape: a wave's extra speculative trials past the first
    // failure are never counted, so trials/failures/first_failing
    // are independent of jobs, snapshots, and wave size. Waves grow
    // geometrically: stop_at_first campaigns that fail early waste
    // little speculation, ones that run long amortize the farm.
    const bool farmed =
        farm_.jobs > 1 || (farm_.snapshots && farm::forkAvailable());
    bool stop = false;

    // Serial, in-order accounting for one executed wave: count trials,
    // feed signatures to the corpus, latch the first failure. Identical
    // at every farm shape because wave composition never depends on it.
    const auto account = [&](const std::vector<SchedulePerturber> &wave,
                             const std::vector<TrialResult> &rs,
                             std::size_t first_ord,
                             const char *phase_label) {
        for (std::size_t i = 0; i < rs.size(); ++i) {
            ++res.trials;
            if (sign) {
                CorpusEntry entry;
                entry.scenario = scenario.name;
                entry.schedule = wave[i].format();
                entry.signatures = rs[i].signatures;
                entry.digest = rs[i].digest;
                entry.trial = res.trials;
                entry.failed = rs[i].failed();
                if (corpus->admit(std::move(entry)) != 0)
                    ++res.coverage_novel;
            }
            if (!rs[i].failed())
                continue;
            ++res.failures;
            if (res.failures == 1) {
                res.first_failing = wave[i];
                res.first_failure = rs[i];
                const char *phase =
                    phase_label != nullptr
                        ? phase_label
                        : (first_ord + i < n_systematic ? "systematic"
                                                        : "random");
                say("failing schedule for " + scenario.name + " (" +
                    phase + " probe): " + wave[i].format());
            }
            if (opt.stop_at_first) {
                stop = true;
                return;
            }
        }
    };

    std::size_t wave_size = farmed ? 4 : 1;
    const std::size_t wave_cap =
        farmed ? std::max<std::size_t>(std::size_t{farm_.jobs} * 4, 32)
               : 1;
    for (std::size_t base = 0; base < probes.size() && !stop;) {
        const std::size_t end =
            std::min(probes.size(), base + wave_size);
        const std::vector<SchedulePerturber> wave(
            probes.begin() + static_cast<std::ptrdiff_t>(base),
            probes.begin() + static_cast<std::ptrdiff_t>(end));
        account(wave, runTrials(scenario, wave, sign), base, nullptr);
        base = end;
        wave_size = std::min(wave_cap, wave_size * 2);
    }

    // Phase 2 (coverage-guided mode): mutate corpus entries instead of
    // sampling blind. Waves are a fixed width -- generation reads the
    // corpus as it stood at the wave boundary, so the probes (and the
    // as-if-serial accounting) are identical at any farm shape.
    // Duplicates consume budget without running, so a converged corpus
    // winds a campaign down instead of re-running old schedules.
    if (opt.coverage_guided && !stop) {
        Rng mrng(opt.seed, "chk.explorer.mutate");
        unsigned generated = 0;
        while (generated < opt.random_budget && !stop) {
            const std::vector<const CorpusEntry *> pool =
                corpus->mutationPool(scenario.name);
            std::vector<SchedulePerturber> wave;
            while (wave.size() < kCoverageWave &&
                   generated < opt.random_budget) {
                ++generated;
                SchedulePerturber p =
                    mutateProbe(mrng, pool, opt, e_lo, e_hi, b_lo,
                                b_hi);
                if (p.empty() ||
                    !corpus->markTried(scenario.name, p.format())) {
                    ++res.duplicate_probes_skipped;
                    continue;
                }
                wave.push_back(std::move(p));
            }
            if (wave.empty())
                continue;
            account(wave, runTrials(scenario, wave, true), 0,
                    "mutated");
        }
    }

    if (res.failures != 0) {
        res.minimized = minimize(scenario, res.first_failing,
                                 opt.minimize_budget);
        res.minimized_schedule = res.minimized.format();
        // Replay the reproducer once more with the flight recorder on:
        // recording is cost-free in simulated time, so this is the
        // same trial (same digest) plus an openable timeline of the
        // failure's final stretch.
        res.minimized_result = runTrialRecorded(
            scenario, res.minimized, &res.flight_trace_json,
            kFlightRingCapacity);
        char line[128];
        std::snprintf(line, sizeof(line),
                      "minimized to %u directive(s): ",
                      static_cast<unsigned>(res.minimized.size()));
        say(line + res.minimized_schedule);
    }
    return res;
}

ExploreResult
Explorer::exploreExhaustive(const Scenario &scenario,
                            const ExhaustiveWindow &window)
{
    ExploreResult res;

    res.baseline = runTrial(scenario, SchedulePerturber{});
    ++res.trials;
    if (res.baseline.failed() || !res.baseline.coverage_ok) {
        res.baseline_failed = true;
        say("baseline failed: " + scenario.name + " " +
            res.baseline.note);
        return res;
    }

    const std::uint64_t n_events =
        std::max<std::uint64_t>(1, res.baseline.events_fired);
    const std::uint64_t lo = window.center > window.halfwidth
                                 ? window.center - window.halfwidth
                                 : 1;
    const std::uint64_t hi =
        std::min(n_events, window.center + window.halfwidth);
    if (lo > hi) {
        say("exhaustive window [" + std::to_string(lo) + ", ...] is "
            "past the end of the run (" + std::to_string(n_events) +
            " events)");
        return res;
    }

    // The complete enumeration: every single delay placement in the
    // window (each sequence x the whole delta ladder), then -- when
    // max_delays allows -- every unordered pair of distinct
    // placements. Same-sequence pairs are skipped: delays merge
    // additively, so they are singles already covered by the ladder.
    std::vector<SchedulePerturber> probes;
    const auto wantMore = [&] {
        return window.budget == 0 || probes.size() < window.budget;
    };
    for (std::uint64_t seq = lo; seq <= hi; ++seq) {
        for (std::size_t d = 0; d < kDeltaLadderSize && wantMore();
             ++d) {
            SchedulePerturber p;
            p.delayEvent(seq, kDeltaLadder[d]);
            probes.push_back(std::move(p));
        }
    }
    if (window.max_delays >= 2) {
        for (std::uint64_t s1 = lo; s1 <= hi; ++s1) {
            for (std::uint64_t s2 = s1 + 1; s2 <= hi; ++s2) {
                for (std::size_t d1 = 0; d1 < kDeltaLadderSize; ++d1) {
                    for (std::size_t d2 = 0;
                         d2 < kDeltaLadderSize && wantMore(); ++d2) {
                        SchedulePerturber p;
                        p.delayEvent(s1, kDeltaLadder[d1]);
                        p.delayEvent(s2, kDeltaLadder[d2]);
                        probes.push_back(std::move(p));
                    }
                }
            }
        }
    }
    say("exhaustive window [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "]: " + std::to_string(probes.size()) +
        " placements");

    // Same farmed wave execution and as-if-serial accounting as
    // explore()'s probe loop.
    const bool farmed =
        farm_.jobs > 1 || (farm_.snapshots && farm::forkAvailable());
    std::size_t wave_size = farmed ? 4 : 1;
    const std::size_t wave_cap =
        farmed ? std::max<std::size_t>(std::size_t{farm_.jobs} * 4, 32)
               : 1;
    bool stop = false;
    for (std::size_t base = 0; base < probes.size() && !stop;) {
        const std::size_t end =
            std::min(probes.size(), base + wave_size);
        const std::vector<SchedulePerturber> wave(
            probes.begin() + static_cast<std::ptrdiff_t>(base),
            probes.begin() + static_cast<std::ptrdiff_t>(end));
        const std::vector<TrialResult> rs = runTrials(scenario, wave);
        for (std::size_t i = 0; i < rs.size(); ++i) {
            ++res.trials;
            if (!rs[i].failed())
                continue;
            ++res.failures;
            if (res.failures == 1) {
                res.first_failing = wave[i];
                res.first_failure = rs[i];
                say("failing schedule for " + scenario.name +
                    " (exhaustive probe): " + wave[i].format());
            }
            if (window.stop_at_first) {
                stop = true;
                break;
            }
        }
        base = end;
        wave_size = std::min(wave_cap, wave_size * 2);
    }

    if (res.failures != 0) {
        res.minimized = minimize(scenario, res.first_failing,
                                 window.minimize_budget);
        res.minimized_schedule = res.minimized.format();
        res.minimized_result = runTrialRecorded(
            scenario, res.minimized, &res.flight_trace_json,
            kFlightRingCapacity);
        char line[128];
        std::snprintf(line, sizeof(line),
                      "minimized to %u directive(s): ",
                      static_cast<unsigned>(res.minimized.size()));
        say(line + res.minimized_schedule);
    }
    return res;
}

SchedulePerturber
Explorer::minimize(const Scenario &scenario,
                   const SchedulePerturber &failing,
                   unsigned budget) const
{
    std::vector<PerturbItem> items = failing.items();
    unsigned used = 0;

    auto fails = [&](const std::vector<PerturbItem> &cand) {
        if (used >= budget)
            return false; // out of budget: keep the known-failing set
        ++used;
        return runTrial(scenario,
                        SchedulePerturber::fromItems(cand))
            .failed();
    };

    // 1-minimal reduction: drop directives one at a time until no
    // single drop still reproduces the failure. Each round farms the
    // whole drop-one wave, then charges the budget exactly as the
    // serial loop would have -- up to and including the first failing
    // candidate -- so `used`, the surviving items, and the final
    // schedule never depend on the farm shape.
    bool exhausted = false;
    bool changed = true;
    while (changed && items.size() > 1 && !exhausted) {
        changed = false;
        std::vector<std::vector<PerturbItem>> cands;
        cands.reserve(items.size());
        for (std::size_t i = 0; i < items.size(); ++i) {
            std::vector<PerturbItem> cand = items;
            cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
            cands.push_back(std::move(cand));
        }
        const std::size_t can_run = std::min<std::size_t>(
            cands.size(), budget - used);
        std::vector<SchedulePerturber> wave;
        wave.reserve(can_run);
        for (std::size_t i = 0; i < can_run; ++i)
            wave.push_back(SchedulePerturber::fromItems(cands[i]));
        const std::vector<TrialResult> rs = runTrials(scenario, wave);

        std::size_t first_fail = can_run;
        for (std::size_t i = 0; i < can_run; ++i)
            if (rs[i].failed()) {
                first_fail = i;
                break;
            }
        if (first_fail < can_run) {
            used += static_cast<unsigned>(first_fail) + 1;
            items = std::move(cands[first_fail]);
            changed = true;
        } else {
            used += static_cast<unsigned>(can_run);
            if (can_run < cands.size())
                exhausted = true; // serial would idle out the rest
        }
    }

    // Delta shrinking: halve each surviving delay while the failure
    // still reproduces, to report the smallest sufficient stretch.
    // Inherently serial -- every halving depends on the last verdict.
    for (std::size_t i = 0; i < items.size(); ++i) {
        while (items[i].extra > 1) {
            std::vector<PerturbItem> cand = items;
            cand[i].extra /= 2;
            if (!fails(cand))
                break;
            items = cand;
        }
    }

    return SchedulePerturber::fromItems(items);
}

} // namespace mach::chk
