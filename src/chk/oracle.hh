/**
 * @file
 * The checker's stale-translation oracle.
 *
 * A TLB consistency bug has exactly one observable signature: at some
 * instant when no pmap operation is in flight, a TLB somewhere on the
 * machine caches a translation granting rights the page tables no
 * longer grant (Section 3's "stale data in the TLB ... used to
 * translate addresses incorrectly"). The oracle installs itself as the
 * pmap system's post-operation hook and re-audits every TLB against
 * the page tables after each completed mapping operation, recording a
 * violation the moment an inconsistent entry is visible.
 *
 * Audits are restricted to quiescent instants:
 *
 *  - While any pmap lock is held another initiator is mid-change, and
 *    remote TLBs legitimately hold entries for the old mapping until
 *    that initiator's invalidation phase runs; auditing there would
 *    flag the algorithm's own (correct) transient.
 *  - CPUs with a pending shootdown action are skipped inside
 *    PmapSystem::auditTlbConsistency() itself: their stale entries are
 *    exactly what the queued invalidation is about to remove, and the
 *    protocol guarantees they are not being used to translate.
 *  - Under ConsistencyStrategy::DelayedFlush stale entries persist by
 *    design until the next timer flush, so the per-op audit is
 *    meaningless and the oracle only checks at finalCheck() time,
 *    after the machine has drained.
 *
 * The oracle consumes no simulated time and draws no random numbers,
 * so attaching it never changes machine behaviour -- a run with the
 * oracle produces the same determinism digest as a run without it.
 */

#ifndef MACH_CHK_ORACLE_HH
#define MACH_CHK_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mach::vm
{
class Kernel;
} // namespace mach::vm

namespace mach::chk
{

/** Stale-translation oracle attached to one vm::Kernel. */
class Oracle
{
  public:
    /** Installs the post-op hook; @p kernel must outlive the oracle. */
    explicit Oracle(vm::Kernel &kernel);
    ~Oracle();

    Oracle(const Oracle &) = delete;
    Oracle &operator=(const Oracle &) = delete;

    /**
     * End-of-run audit. Call after machine().run() returns; checks
     * once more (even under DelayedFlush, where a drained machine has
     * flushed every buffer) unless a pmap lock is still held, which
     * happens only when the run was cut short mid-operation.
     */
    void finalCheck();

    bool clean() const { return violations_.empty(); }

    /** Human-readable violation reports, capped at kMaxStored. */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    std::uint64_t violationCount() const { return violation_count_; }
    std::uint64_t opsAudited() const { return ops_audited_; }
    std::uint64_t opsSkipped() const { return ops_skipped_; }

    static constexpr std::size_t kMaxStored = 16;

  private:
    void audit(const char *where);

    vm::Kernel &kernel_;
    std::vector<std::string> violations_;
    std::uint64_t violation_count_ = 0;
    std::uint64_t ops_audited_ = 0;
    std::uint64_t ops_skipped_ = 0;
};

} // namespace mach::chk

#endif // MACH_CHK_ORACLE_HH
