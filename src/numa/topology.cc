#include "numa/topology.hh"

#include <algorithm>
#include <cstdlib>

#include "base/logging.hh"

namespace mach::numa
{

Topology::Topology(const hw::MachineConfig *config)
    : nodes_(config->numa_nodes),
      cpus_per_node_(config->cpusPerNode())
{
    if (!config->numa_distance_spec.empty()) {
        std::string error;
        if (!parseDistance(config->numa_distance_spec, nodes_,
                           &distance_, &error)) {
            fatal("Topology: bad numa_distance_spec \"%s\": %s",
                  config->numa_distance_spec.c_str(), error.c_str());
        }
        return;
    }
    distance_.assign(std::size_t{nodes_} * nodes_,
                     config->numa_remote_distance);
    for (unsigned n = 0; n < nodes_; ++n)
        distance_[n * nodes_ + n] = kLocalDistance;
}

bool
Topology::parseDistance(const std::string &spec, unsigned nodes,
                        std::vector<unsigned> *out, std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    std::vector<unsigned> matrix;
    std::size_t pos = 0;
    unsigned rows = 0;
    while (pos <= spec.size()) {
        const std::size_t row_end = std::min(spec.find(';', pos),
                                             spec.size());
        unsigned cols = 0;
        std::size_t p = pos;
        while (p <= row_end) {
            const std::size_t ent_end = std::min(spec.find(',', p),
                                                 row_end);
            if (ent_end == p)
                return fail("empty entry");
            char *end = nullptr;
            const long v =
                std::strtol(spec.substr(p, ent_end - p).c_str(), &end,
                            10);
            if (end == nullptr || *end != '\0')
                return fail("non-numeric entry");
            if (v < static_cast<long>(kLocalDistance) || v > 255)
                return fail("entry out of range [10,255]");
            matrix.push_back(static_cast<unsigned>(v));
            ++cols;
            if (ent_end >= row_end)
                break;
            p = ent_end + 1;
        }
        if (cols != nodes)
            return fail("row has wrong width");
        ++rows;
        if (row_end >= spec.size())
            break;
        pos = row_end + 1;
    }
    if (rows != nodes)
        return fail("wrong number of rows");

    for (unsigned a = 0; a < nodes; ++a) {
        if (matrix[a * nodes + a] != kLocalDistance)
            return fail("diagonal must be 10");
        for (unsigned b = 0; b < nodes; ++b) {
            if (matrix[a * nodes + b] != matrix[b * nodes + a])
                return fail("matrix must be symmetric");
        }
    }
    *out = std::move(matrix);
    return true;
}

} // namespace mach::numa
