/**
 * @file
 * The run farm's work-stealing thread pool.
 *
 * The simulator is single-threaded by construction -- one Machine, one
 * host thread, fibers interleaved at explicit simulation points -- but
 * campaigns (explorer sweeps, bench config sweeps, machsim --repeat)
 * are embarrassingly parallel: every probe or config is an independent
 * deterministic run on its own Machine. The pool runs N such fully
 * isolated machines concurrently, one per worker thread.
 *
 * Isolation contract (docs/SIMULATOR.md "Run farm"): a Machine (or
 * vm::Kernel) must be constructed, driven, and inspected on a single
 * worker -- fiber scheduler state is thread-local, and a fiber's saved
 * context links back to the resuming thread's scheduler slot. Jobs
 * therefore own their machines wholesale; only plain results cross
 * threads, after join. Determinism is preserved by indexing results by
 * job, never by completion order.
 *
 * Scheduling is work-stealing: each worker owns a deque, pushes and
 * pops at its own back, and steals from the front of a victim's deque
 * when empty. Simulation jobs are milliseconds to seconds long, so a
 * tiny mutex per deque (not a lock-free Chase-Lev deque) is far below
 * measurement noise while keeping the stealing behaviour -- long jobs
 * migrate to idle workers instead of convoying behind a slow one.
 */

#ifndef MACH_FARM_THREAD_POOL_HH
#define MACH_FARM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mach::farm
{

/** Fixed-size work-stealing pool; jobs are void() closures. */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /** Start @p workers threads (at least one). */
    explicit ThreadPool(unsigned workers);

    /** Waits for every submitted job, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job; round-robins across worker deques. */
    void submit(Job job);

    /** Block until every job submitted so far has finished. */
    void wait();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<Job> jobs;
    };

    void workerLoop(unsigned self);
    /** Pop from own back, else steal from another's front. */
    bool takeJob(unsigned self, Job *out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex state_mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    std::size_t pending_ = 0;   ///< Submitted, not yet finished.
    std::size_t available_ = 0; ///< Tickets: jobs enqueued, unclaimed.
    unsigned next_deque_ = 0;   ///< Round-robin submission cursor.
    bool shutdown_ = false;
};

/**
 * Run every job in @p jobs to completion on @p workers concurrent
 * threads and return when all have finished. With workers <= 1 the
 * jobs run inline on the calling thread, in order, with no threads
 * created -- the bit-exact serial path. Results must be communicated
 * through the closures (indexed slots), never by completion order.
 */
void runMany(std::vector<std::function<void()>> jobs, unsigned workers);

/**
 * Farm width from the MACH_FARM_JOBS environment variable, falling
 * back to @p fallback (0 = the host's hardware concurrency).
 */
unsigned defaultJobs(unsigned fallback = 1);

} // namespace mach::farm

#endif // MACH_FARM_THREAD_POOL_HH
