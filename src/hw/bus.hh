/**
 * @file
 * Shared-bus contention model.
 *
 * The Multimax is a bus-based machine with write-through caches; earlier
 * experiments (cited in Section 7.1) showed bus congestion becoming
 * significant once 12 or more processors actively use the bus. During a
 * large shootdown the initiator plus all spinning responders are bus
 * users (interrupt state saves and shootdown-structure polls miss in
 * cache), which is what bends Figure 2 upward and doubles its standard
 * deviation at 13-15 processors.
 *
 * The model: each memory access pays a penalty proportional to the
 * number of current bus users beyond a threshold, plus deterministic
 * pseudo-random jitter while contended.
 */

#ifndef MACH_HW_BUS_HH
#define MACH_HW_BUS_HH

#include "base/perturb.hh"
#include "base/rng.hh"
#include "base/types.hh"
#include "hw/machine_config.hh"

namespace mach::hw
{

/**
 * Tracks active bus users and prices accesses accordingly.
 *
 * On NUMA shapes each node owns one Bus (its CPUs contend only with
 * each other); @p node salts the jitter RNG so the per-node streams
 * are independent. Node 0 with no salt is bit-identical to the
 * single-bus machine, which the determinism goldens pin.
 */
class Bus
{
  public:
    explicit Bus(const MachineConfig *config, unsigned node = 0)
        : config_(config),
          rng_(config->seed ^ 0xb05b05b05ull ^
               (node * 0x9e3779b97f4a7c15ull))
    {
    }

    /** A CPU begins actively using the bus (spinning, bursts of misses). */
    void
    enter()
    {
        ++users_;
    }

    /** The CPU stops actively using the bus. */
    void
    leave()
    {
        MACH_ASSERT(users_ > 0);
        --users_;
    }

    unsigned users() const { return users_; }

    /** Total accesses ever priced (1-based id of the last access). */
    std::uint64_t accessCount() const { return accesses_; }

    /**
     * Install (or clear) a perturbation schedule: the directed extra
     * ticks are added to the cost of the matching access numbers. The
     * access counter is deterministic, so bus perturbations replay
     * exactly like event delays (see base/perturb.hh).
     */
    void setPerturber(const SchedulePerturber *perturber)
    {
        perturber_ = perturber;
    }

    /**
     * Cost of one memory access right now: the uncontended base cost
     * plus congestion penalty and jitter when the bus is saturated.
     */
    Tick
    accessCost()
    {
        Tick cost = config_->mem_access_cost;
        if (config_->mem_jitter > 0)
            cost += rng_.below(config_->mem_jitter);
        if (users_ > config_->bus_contention_threshold) {
            const unsigned excess =
                users_ - config_->bus_contention_threshold;
            cost += excess * config_->bus_penalty_per_user;
            if (config_->bus_contended_jitter > 0)
                cost += rng_.below(config_->bus_contended_jitter);
        }
        ++accesses_;
        if (perturber_ != nullptr)
            cost += perturber_->busDelay(accesses_);
        return cost;
    }

    /**
     * Cost of @p count back-to-back accesses at current prices. Draws
     * the same per-access jitter sequence as @p count accessCost()
     * calls, so tick totals (and the RNG stream) are identical -- the
     * overload only spares callers the per-draw call overhead.
     */
    Tick
    accessCost(unsigned count)
    {
        Tick total = 0;
        for (unsigned i = 0; i < count; ++i)
            total += accessCost();
        return total;
    }

    /** RAII bus-user registration. */
    class User
    {
      public:
        explicit User(Bus &bus) : bus_(bus) { bus_.enter(); }
        ~User() { bus_.leave(); }
        User(const User &) = delete;
        User &operator=(const User &) = delete;

      private:
        Bus &bus_;
    };

  private:
    const MachineConfig *config_;
    Rng rng_;
    unsigned users_ = 0;
    std::uint64_t accesses_ = 0;
    const SchedulePerturber *perturber_ = nullptr;
};

} // namespace mach::hw

#endif // MACH_HW_BUS_HH
