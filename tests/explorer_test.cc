/**
 * @file
 * The shootdown model checker's own test suite.
 *
 * Two halves:
 *
 *  - Every built-in adversarial scenario is explored for a budget of
 *    schedules (MACH_EXPLORE_BUDGET, default 200) and must show zero
 *    safety, liveness, or oracle failures: the Mach algorithm keeps
 *    TLBs consistent under every perturbation we can throw at it.
 *    When a scenario DOES fail, the minimized reproducer is written
 *    to chk_failures/<scenario>.schedule so CI can upload it.
 *
 *  - The golden detection test: the same storm on a machine with the
 *    planted protocol bug (responders skip the phase-2 stall) must be
 *    caught -- the explorer finds a failing schedule, minimizes it,
 *    and the minimized string replays the failure bit-exactly while
 *    leaving the correct protocol unharmed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "base/perturb.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"

namespace
{

using namespace mach;

unsigned
exploreBudget()
{
    if (const char *env = std::getenv("MACH_EXPLORE_BUDGET")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 200;
}

chk::ExploreOptions
optionsForBudget(unsigned budget)
{
    chk::ExploreOptions opt;
    opt.systematic_budget = std::max(1u, budget * 3 / 10);
    opt.random_budget = budget - opt.systematic_budget;
    return opt;
}

/** Persist a failing schedule where CI picks artifacts up. */
void
writeFailureArtifact(const std::string &scenario,
                     const chk::ExploreResult &res)
{
    std::error_code ec;
    std::filesystem::create_directories("chk_failures", ec);
    std::ofstream out("chk_failures/" + scenario + ".schedule");
    out << "# scenario: " << scenario << "\n";
    out << "# first failing schedule:\n" << res.first_failing.format()
        << "\n";
    out << "# minimized (replay with machsim --schedule):\n"
        << res.minimized_schedule << "\n";
    for (const std::string &v : res.first_failure.violations)
        out << "# " << v << "\n";
    if (!res.first_failure.note.empty())
        out << "# note: " << res.first_failure.note << "\n";
    // The minimized replay's flight-recorder timeline rides along so
    // the CI artifact opens in Perfetto, not just in a text editor.
    if (!res.flight_trace_json.empty()) {
        std::ofstream trace("chk_failures/" + scenario + ".trace.json");
        trace << res.flight_trace_json;
    }
}

std::vector<std::string>
scenarioNames()
{
    std::vector<std::string> names;
    for (const chk::Scenario &s : chk::builtinScenarios())
        names.push_back(s.name);
    return names;
}

class ScenarioExploration
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScenarioExploration, NoFailureWithinBudget)
{
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *scenario =
        chk::findScenario(library, GetParam());
    ASSERT_NE(scenario, nullptr);

    chk::Explorer explorer;
    const unsigned budget = exploreBudget();
    const chk::ExploreResult res =
        explorer.explore(*scenario, optionsForBudget(budget));

    if (res.foundFailure())
        writeFailureArtifact(scenario->name, res);

    ASSERT_FALSE(res.baseline_failed)
        << "baseline run failed: " << res.baseline.note
        << (res.baseline.violations.empty()
                ? ""
                : "; " + res.baseline.violations.front());
    EXPECT_EQ(res.failures, 0u)
        << "failing schedule: " << res.first_failing.format()
        << "; minimized: " << res.minimized_schedule << "; "
        << (res.first_failure.violations.empty()
                ? res.first_failure.note
                : res.first_failure.violations.front());
    // The whole budget was actually spent (plus the baseline run).
    EXPECT_GE(res.trials, budget + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Chk, ScenarioExploration, ::testing::ValuesIn(scenarioNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

/** Baseline runs alone must already satisfy scenario coverage. */
TEST(ScenarioLibrary, BaselinesFinishWithCoverage)
{
    chk::Explorer explorer;
    for (const chk::Scenario &s : chk::builtinScenarios()) {
        const chk::TrialResult r =
            explorer.runTrial(s, SchedulePerturber{});
        EXPECT_TRUE(r.completed) << s.name << " did not finish";
        EXPECT_TRUE(r.predicate_ok) << s.name << ": " << r.note;
        EXPECT_TRUE(r.coverage_ok) << s.name << ": " << r.note;
        EXPECT_EQ(r.violation_count, 0u)
            << s.name << ": "
            << (r.violations.empty() ? "" : r.violations.front());
    }
}

/** Equal (scenario, schedule) pairs replay to equal digests. */
TEST(Replay, TrialDigestIsDeterministic)
{
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *storm =
        chk::findScenario(library, "storm-baseline");
    ASSERT_NE(storm, nullptr);

    SchedulePerturber p;
    std::string error;
    ASSERT_TRUE(
        SchedulePerturber::parse("e120+50000,b40+9000", &p, &error))
        << error;

    chk::Explorer explorer;
    const chk::TrialResult a = explorer.runTrial(*storm, p);
    const chk::TrialResult b = explorer.runTrial(*storm, p);
    EXPECT_TRUE(a.completed);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.end_time, b.end_time);
    EXPECT_EQ(a.events_fired, b.events_fired);

    // A substantially different schedule steers the run into a
    // different interleaving with a different fingerprint.
    SchedulePerturber q;
    ASSERT_TRUE(SchedulePerturber::parse("e200+1500000,e800+700000",
                                         &q, nullptr));
    const chk::TrialResult c = explorer.runTrial(*storm, q);
    EXPECT_NE(a.digest, c.digest);
}

/**
 * The golden detection test. The planted bug (responders rejoin the
 * active set without stalling on the pmap lock) is schedule-
 * dependent: the unperturbed baseline happens to survive, but the
 * explorer must find a schedule where a responder re-caches the
 * pre-change PTE, minimize it, and hand back a replayable string.
 */
TEST(BrokenProtocol, ExplorerCatchesSkippedResponderStall)
{
    const chk::Scenario broken = chk::brokenStallScenario();
    chk::Explorer explorer;
    const chk::ExploreResult res = explorer.explore(broken);

    ASSERT_FALSE(res.baseline_failed)
        << "planted bug should be schedule-dependent, but the "
           "baseline already failed: "
        << res.baseline.note;
    ASSERT_GT(res.failures, 0u)
        << "explorer missed the planted protocol bug";

    // The failure is a stale translation: either the oracle saw a
    // TLB entry inconsistent with the page tables, or a write landed
    // through the revoked mapping.
    EXPECT_TRUE(res.first_failure.violation_count > 0 ||
                !res.first_failure.predicate_ok)
        << "unexpected failure mode (liveness?)";

    // Minimization produced a no-larger, still-failing reproducer.
    ASSERT_FALSE(res.minimized_schedule.empty());
    EXPECT_GE(res.minimized.size(), 1u);
    EXPECT_LE(res.minimized.size(), res.first_failing.size());
    EXPECT_TRUE(res.minimized_result.failed());

    // The string round-trips and replays the failure bit-exactly.
    SchedulePerturber replay;
    std::string error;
    ASSERT_TRUE(SchedulePerturber::parse(res.minimized_schedule,
                                         &replay, &error))
        << error;
    EXPECT_EQ(replay.format(), res.minimized_schedule);
    const chk::TrialResult once = explorer.runTrial(broken, replay);
    const chk::TrialResult twice = explorer.runTrial(broken, replay);
    EXPECT_TRUE(once.failed());
    EXPECT_EQ(once.digest, twice.digest);

    // The correct protocol shrugs off the same adversarial schedule.
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *fixed =
        chk::findScenario(library, "storm-baseline");
    ASSERT_NE(fixed, nullptr);
    const chk::TrialResult healthy =
        explorer.runTrial(*fixed, replay);
    EXPECT_FALSE(healthy.failed())
        << (healthy.violations.empty() ? healthy.note
                                       : healthy.violations.front());
}

TEST(BrokenProtocol, ExplorerCatchesStaleReplicaSync)
{
    const chk::Scenario broken = chk::brokenReplicaScenario();
    chk::Explorer explorer;
    // The replica-sync window is a single initiator event per revoke
    // round, so the systematic sweep needs to reach it: give it a
    // deeper budget than the defaults.
    chk::ExploreOptions opt;
    opt.systematic_budget = 200;
    opt.random_budget = 400;
    const chk::ExploreResult res = explorer.explore(broken, opt);

    ASSERT_FALSE(res.baseline_failed)
        << "planted bug should be schedule-dependent, but the "
           "baseline already failed: "
        << res.baseline.note;
    ASSERT_GT(res.failures, 0u)
        << "explorer missed the planted stale-replica bug";

    // The failure is a stale translation reloaded from a lagging
    // node-local replica: the oracle's TLB-vs-primary audit flags it
    // and/or a write lands through the revoked mapping.
    EXPECT_TRUE(res.first_failure.violation_count > 0 ||
                !res.first_failure.predicate_ok)
        << "unexpected failure mode (liveness?)";

    // Minimization produced a no-larger, still-failing reproducer.
    ASSERT_FALSE(res.minimized_schedule.empty());
    EXPECT_GE(res.minimized.size(), 1u);
    EXPECT_LE(res.minimized.size(), res.first_failing.size());
    EXPECT_TRUE(res.minimized_result.failed());

    // The string round-trips and replays the failure bit-exactly.
    SchedulePerturber replay;
    std::string error;
    ASSERT_TRUE(SchedulePerturber::parse(res.minimized_schedule,
                                         &replay, &error))
        << error;
    EXPECT_EQ(replay.format(), res.minimized_schedule);
    const chk::TrialResult once = explorer.runTrial(broken, replay);
    const chk::TrialResult twice = explorer.runTrial(broken, replay);
    EXPECT_TRUE(once.failed());
    EXPECT_EQ(once.digest, twice.digest);

    // Healthy replicas (fan-out under the pmap lock) shrug off the
    // same adversarial schedule.
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *fixed =
        chk::findScenario(library, "numa-replicas");
    ASSERT_NE(fixed, nullptr);
    const chk::TrialResult healthy = explorer.runTrial(*fixed, replay);
    EXPECT_FALSE(healthy.failed())
        << (healthy.violations.empty() ? healthy.note
                                       : healthy.violations.front());
}

TEST(BrokenProtocol, ExplorerCatchesSkippedAsidGeneration)
{
    const chk::Scenario broken = chk::brokenAsidScenario();
    chk::Explorer explorer;
    // Unperturbed, every revoke lands inside the writer's on-CPU
    // window and takes the ordinary IPI path; only a delay pushing a
    // revoke into the writer's sleep makes the LazyAsid policy defer
    // the flush -- which the planted bug then never applies. The
    // window is ~1.5 ms wide per round, well inside the systematic
    // sweep's delta ladder.
    chk::ExploreOptions opt;
    opt.systematic_budget = 200;
    opt.random_budget = 400;
    const chk::ExploreResult res = explorer.explore(broken, opt);

    ASSERT_FALSE(res.baseline_failed)
        << "planted bug should be schedule-dependent, but the "
           "baseline already failed: "
        << res.baseline.note;
    ASSERT_GT(res.failures, 0u)
        << "explorer missed the planted skipped-ASID-generation bug";

    // The failure is a revoked translation surviving in the tagged
    // TLB across a context load: the oracle's TLB-vs-PTE audit flags
    // the residue and/or the writer's store lands through it.
    EXPECT_TRUE(res.first_failure.violation_count > 0 ||
                !res.first_failure.predicate_ok)
        << "unexpected failure mode (liveness?)";

    // Minimization produced a no-larger, still-failing reproducer.
    ASSERT_FALSE(res.minimized_schedule.empty());
    EXPECT_GE(res.minimized.size(), 1u);
    EXPECT_LE(res.minimized.size(), res.first_failing.size());
    EXPECT_TRUE(res.minimized_result.failed());

    // The string round-trips and replays the failure bit-exactly.
    SchedulePerturber replay;
    std::string error;
    ASSERT_TRUE(SchedulePerturber::parse(res.minimized_schedule,
                                         &replay, &error))
        << error;
    EXPECT_EQ(replay.format(), res.minimized_schedule);
    const chk::TrialResult once = explorer.runTrial(broken, replay);
    const chk::TrialResult twice = explorer.runTrial(broken, replay);
    EXPECT_TRUE(once.failed());
    EXPECT_EQ(once.digest, twice.digest);

    // The healthy policy (generation check live, deferred flush
    // applied at context load) shrugs off the same schedule.
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *fixed =
        chk::findScenario(library, "policy-lazy-asid");
    ASSERT_NE(fixed, nullptr);
    const chk::TrialResult healthy = explorer.runTrial(*fixed, replay);
    EXPECT_FALSE(healthy.failed())
        << (healthy.violations.empty() ? healthy.note
                                       : healthy.violations.front());
}

} // namespace
