/**
 * @file
 * Statistical analysis of xpr shootdown records -- the "utility programs
 * to read the collected data and perform statistical analysis" of
 * Section 6, producing the rows of Tables 1-4.
 */

#ifndef MACH_XPR_ANALYSIS_HH
#define MACH_XPR_ANALYSIS_HH

#include <cstdint>
#include <string>

#include "base/stats.hh"
#include "xpr/xpr.hh"

namespace mach::xpr
{

/** Summary of one class of shootdown events. */
struct ShootdownSummary
{
    std::uint64_t events = 0;
    Sample time_usec;   ///< Initiator sync / responder ISR times.
    Sample pages;       ///< Initiator only: pages per shootdown.
    Sample procs;       ///< Initiator only: processors shot at.

    /** Total overhead = events x mean time (Section 7.2). */
    double totalOverheadUsec() const
    {
        return time_usec.sum();
    }
};

/** Everything the evaluation tables need from one application run. */
struct RunAnalysis
{
    ShootdownSummary kernel_initiator;
    ShootdownSummary user_initiator;
    ShootdownSummary responder;
    /**
     * The circular buffer wrapped during the run: the oldest records
     * were lost, so the counts (and any Tables 1-4 style rows built
     * from them) are truncated and must not be trusted as totals.
     */
    bool overflowed = false;
};

/**
 * Classify and summarize all records in @p buffer. Warns (once per
 * call) when the buffer overflowed; callers print the returned
 * overflowed flag next to any table they emit.
 */
RunAnalysis analyze(const Buffer &buffer);

/**
 * Format one table row the way the paper prints distributions:
 * events, mean+-std, 10th percentile, median, 90th percentile.
 * @p not_meaningful replaces the percentile fields with "NM" (used for
 * samples that are too small or bimodal, per Table 2's footnote).
 */
std::string formatRow(const std::string &label,
                      const ShootdownSummary &summary,
                      bool not_meaningful = false);

} // namespace mach::xpr

#endif // MACH_XPR_ANALYSIS_HH
