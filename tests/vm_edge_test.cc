/**
 * @file
 * Edge-case tests: object lifetimes across COW chains, map-level unit
 * behaviour, deep shadow chains from repeated forks, and combinations
 * of the optional machine features.
 */

#include <gtest/gtest.h>

#include "apps/camelot.hh"
#include "apps/mach_build.hh"
#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

void
inKernel(hw::MachineConfig config,
         const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    setLogQuiet(true);
    vm::Kernel kernel(config);
    kernel.start();
    bool finished = false;
    kernel.spawnThread(nullptr, "edge-driver",
                       [&](kern::Thread &driver) {
                           body(kernel, driver);
                           finished = true;
                           kernel.machine().ctx().requestStop();
                       });
    kernel.machine().run();
    ASSERT_TRUE(finished);
}

hw::MachineConfig
config4()
{
    hw::MachineConfig config;
    config.ncpus = 4;
    return config;
}

void
inTask(vm::Kernel &kernel, kern::Thread &driver, vm::Task *task,
       const std::function<void(kern::Thread &)> &body)
{
    kern::Thread *thread = kernel.spawnThread(task, "edge-body", body);
    driver.join(*thread);
}

TEST(VmEdge, CopySurvivesSourceDeallocation)
{
    // The shadow chain keeps the backing object alive: deallocating
    // the source range must not free pages the copy still reads.
    inKernel(config4(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr src = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &src,
                                          2 * kPageSize, true));
            ASSERT_TRUE(self.store32(src, 0x5a5a));
            VAddr copy = 0;
            ASSERT_TRUE(kernel.vmCopy(self, *task, src, 2 * kPageSize,
                                      &copy));
            ASSERT_TRUE(
                kernel.vmDeallocate(self, *task, src, 2 * kPageSize));

            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(copy, &value));
            EXPECT_EQ(value, 0x5a5au);
            // And the copy is still independently writable.
            ASSERT_TRUE(self.store32(copy, 0x1111));
        });
    });
}

TEST(VmEdge, GrandchildForkDeepChain)
{
    // Fork of a fork: the grandchild reads pre-fork data through a
    // two-deep shadow chain, and all three generations stay isolated.
    inKernel(config4(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *parent = kernel.createTask("gen0");
        inTask(kernel, drv, parent, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *parent, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 100));

            vm::Task *child = kernel.forkTask(self, *parent, "gen1");
            kern::Thread *in_child = kernel.spawnThread(
                child, "gen1-main", [&](kern::Thread &ct) {
                    std::uint32_t value = 0;
                    ASSERT_TRUE(ct.load32(va, &value));
                    EXPECT_EQ(value, 100u);
                    ASSERT_TRUE(ct.store32(va, 200));

                    vm::Task *grandchild =
                        kernel.forkTask(ct, *child, "gen2");
                    kern::Thread *in_gc = kernel.spawnThread(
                        grandchild, "gen2-main",
                        [&](kern::Thread &gt) {
                            std::uint32_t v = 0;
                            ASSERT_TRUE(gt.load32(va, &v));
                            EXPECT_EQ(v, 200u); // The child's view.
                            ASSERT_TRUE(gt.store32(va, 300));
                        });
                    ct.join(*in_gc);

                    // The grandchild's write is invisible here.
                    ASSERT_TRUE(ct.load32(va, &value));
                    EXPECT_EQ(value, 200u);
                });
            self.join(*in_child);

            // And the parent still sees its original data.
            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 100u);
        });
    });
}

TEST(VmEdge, RepeatedCopiesChainAndStayCorrect)
{
    inKernel(config4(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *task, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 0));

            // copy-of-copy-of-copy, each written after copying.
            VAddr prev = va;
            for (std::uint32_t gen = 1; gen <= 5; ++gen) {
                VAddr next = 0;
                ASSERT_TRUE(kernel.vmCopy(self, *task, prev, kPageSize,
                                          &next));
                std::uint32_t inherited = 0xff;
                ASSERT_TRUE(self.load32(next, &inherited));
                EXPECT_EQ(inherited, gen - 1);
                ASSERT_TRUE(self.store32(next, gen));
                prev = next;
            }
            // The original is still zero.
            std::uint32_t value = 0xff;
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 0u);
        });
    });
}

TEST(VmEdge, ShareSurvivesLaterCopyFork)
{
    // Regression for a bug the fork fuzzer found: after parent and
    // child1 share a region, a *later* copy-fork of the parent must
    // not detach the sharers from each other.
    inKernel(config4(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *parent = kernel.createTask("p");
        inTask(kernel, drv, parent, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *parent, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 1));
            ASSERT_TRUE(kernel.vmInherit(self, *parent, va, kPageSize,
                                         vm::Inherit::Share));
            vm::Task *sharer = kernel.forkTask(self, *parent, "share");

            // Now a copy-fork of the parent (snapshot semantics).
            ASSERT_TRUE(kernel.vmInherit(self, *parent, va, kPageSize,
                                         vm::Inherit::Copy));
            vm::Task *snap = kernel.forkTask(self, *parent, "snap");

            // Parent writes; the sharer must see it, the snapshot not.
            ASSERT_TRUE(self.store32(va, 2));
            kern::Thread *in_sharer = kernel.spawnThread(
                sharer, "sh", [&](kern::Thread &st) {
                    std::uint32_t value = 0;
                    ASSERT_TRUE(st.load32(va, &value));
                    EXPECT_EQ(value, 2u) << "share broke";
                    ASSERT_TRUE(st.store32(va, 3));
                });
            self.join(*in_sharer);
            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 3u); // Sharer's write visible to parent.

            kern::Thread *in_snap = kernel.spawnThread(
                snap, "sn", [&](kern::Thread &st) {
                    std::uint32_t v = 0;
                    ASSERT_TRUE(st.load32(va, &v));
                    EXPECT_EQ(v, 1u) << "snapshot leaked later writes";
                });
            self.join(*in_snap);
        });
    });
}

TEST(VmEdge, ShareOfPendingCopyResolvesCleanly)
{
    // Share-forking an entry that is itself a pending virtual copy:
    // the pending copy resolves so both sharers alias one object,
    // while the earlier COW peer keeps its snapshot.
    inKernel(config4(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *parent = kernel.createTask("p");
        inTask(kernel, drv, parent, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *parent, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 10));
            // First a copy-fork: parent's entry now needs_copy.
            vm::Task *peer = kernel.forkTask(self, *parent, "peer");

            // Then a share-fork of the same (pending-copy) entry.
            ASSERT_TRUE(kernel.vmInherit(self, *parent, va, kPageSize,
                                         vm::Inherit::Share));
            vm::Task *sharer = kernel.forkTask(self, *parent, "share");

            ASSERT_TRUE(self.store32(va, 20));
            kern::Thread *in_sharer = kernel.spawnThread(
                sharer, "sh", [&](kern::Thread &st) {
                    std::uint32_t value = 0;
                    ASSERT_TRUE(st.load32(va, &value));
                    EXPECT_EQ(value, 20u);
                });
            self.join(*in_sharer);
            kern::Thread *in_peer = kernel.spawnThread(
                peer, "pe", [&](kern::Thread &st) {
                    std::uint32_t value = 0;
                    ASSERT_TRUE(st.load32(va, &value));
                    EXPECT_EQ(value, 10u); // Pre-share snapshot.
                });
            self.join(*in_peer);
        });
    });
}

TEST(VmEdge, VmCopyOfSharedRegionIsEager)
{
    inKernel(config4(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *parent = kernel.createTask("p");
        inTask(kernel, drv, parent, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *parent, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 5));
            ASSERT_TRUE(kernel.vmInherit(self, *parent, va, kPageSize,
                                         vm::Inherit::Share));
            vm::Task *sharer = kernel.forkTask(self, *parent, "share");
            (void)sharer;

            // A virtual copy of the (now shared) region snapshots it.
            VAddr dup = 0;
            ASSERT_TRUE(
                kernel.vmCopy(self, *parent, va, kPageSize, &dup));
            ASSERT_TRUE(self.store32(va, 6)); // Post-copy write.
            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(dup, &value));
            EXPECT_EQ(value, 5u);
            // And the share pair still shares.
            kern::Thread *in_sharer = kernel.spawnThread(
                sharer, "sh", [&](kern::Thread &st) {
                    std::uint32_t v = 0;
                    ASSERT_TRUE(st.load32(va, &v));
                    EXPECT_EQ(v, 6u);
                });
            self.join(*in_sharer);
        });
    });
}

TEST(VmMapUnit, FindSpaceInRespectsBounds)
{
    vm::VmMap map("unit", 0x10000, 0x100000);
    const VAddr slice_lo = 0x40000, slice_hi = 0x80000;
    EXPECT_EQ(map.findSpaceIn(slice_lo, slice_hi, 4 * kPageSize),
              slice_lo);

    vm::VmMapEntry entry;
    entry.start = slice_lo;
    entry.end = slice_lo + 8 * kPageSize;
    entry.object = nullptr;
    map.insert(entry);
    EXPECT_EQ(map.findSpaceIn(slice_lo, slice_hi, kPageSize),
              slice_lo + 8 * kPageSize);
    // A request bigger than the slice's free space fails.
    EXPECT_EQ(map.findSpaceIn(slice_lo, slice_hi,
                              slice_hi - slice_lo),
              0u);
    // Other slices are unaffected.
    EXPECT_EQ(map.findSpaceIn(0x80000, 0x100000, kPageSize), 0x80000u);
}

TEST(VmMapUnit, LookupBoundaries)
{
    vm::VmMap map("unit", 0x10000, 0x100000);
    vm::VmMapEntry entry;
    entry.start = 0x20000;
    entry.end = 0x23000;
    map.insert(entry);
    EXPECT_EQ(map.lookup(0x1ffff), nullptr);
    EXPECT_NE(map.lookup(0x20000), nullptr);
    EXPECT_NE(map.lookup(0x22fff), nullptr);
    EXPECT_EQ(map.lookup(0x23000), nullptr);
}

TEST(VmMapUnit, ClipAndApplySkipsHoles)
{
    vm::VmMap map("unit", 0x10000, 0x100000);
    for (VAddr base : {0x20000u, 0x40000u}) {
        vm::VmMapEntry entry;
        entry.start = base;
        entry.end = base + 2 * kPageSize;
        map.insert(entry);
    }
    unsigned visited = 0;
    map.clipAndApply(0x10000, 0x100000,
                     [&](vm::VmMapEntry &) { ++visited; });
    EXPECT_EQ(visited, 2u);
}

TEST(FeatureCombo, AsidTagsFullWorkload)
{
    hw::MachineConfig config = config4();
    config.ncpus = 16;
    config.tlb_asid_tags = true;
    setLogQuiet(true);
    vm::Kernel kernel(config);
    apps::Camelot app({.transactions = 40});
    app.execute(kernel);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST(FeatureCombo, PoolsPlusRemoteInvalidate)
{
    hw::MachineConfig config;
    config.ncpus = 16;
    config.kernel_pools = 4;
    config.tlb_remote_invalidate = true;
    config.tlb_no_refmod_writeback = true;
    setLogQuiet(true);
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 6, .warmup = 15 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    EXPECT_EQ(kernel.pmaps().shoot().interrupts_sent, 0u);
}

TEST(FeatureCombo, DelayedFlushWithPageout)
{
    hw::MachineConfig config;
    config.ncpus = 4;
    config.consistency_strategy = hw::ConsistencyStrategy::DelayedFlush;
    config.tlb_no_refmod_writeback = true;
    config.phys_frames = 128;
    config.pageout_low_frames = 80;
    config.pagein_latency = 2 * kMsec;
    config.pageout_latency = 2 * kMsec;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        kernel.enablePageout();
        vm::Task *task = kernel.createTask("dfp");
        kern::Thread *worker = kernel.spawnThread(
            task, "worker", [&](kern::Thread &self) {
                VAddr va = 0;
                ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                              56 * kPageSize, true));
                for (unsigned i = 0; i < 56; ++i)
                    ASSERT_TRUE(
                        self.store32(va + i * kPageSize, 7000 + i));
                self.sleep(300 * kMsec);
                for (unsigned i = 0; i < 56; ++i) {
                    std::uint32_t value = 0;
                    ASSERT_TRUE(
                        self.load32(va + i * kPageSize, &value));
                    ASSERT_EQ(value, 7000 + i);
                }
            });
        drv.join(*worker);
        EXPECT_GT(kernel.pager().pageouts, 0u);
    });
}

TEST(WorkloadParams, SerialMachBuildCompletes)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    apps::MachBuild app({.jobs = 4, .concurrency = 1});
    app.execute(kernel);
    EXPECT_EQ(app.jobs_completed, 4u);
}

} // namespace
} // namespace mach
