#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"

namespace mach::sim
{

std::uint32_t
EventQueue::allocNode()
{
    if (free_head_ != kNil) {
        const std::uint32_t slot = free_head_;
        free_head_ = slab_[slot].next;
        slab_[slot].next = kNil;
        return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void
EventQueue::releaseNode(std::uint32_t slot)
{
    Node &node = slab_[slot];
    node.seq = 0;
    node.raw_fn = nullptr;
    node.raw_ctx = nullptr;
    node.raw_token = 0;
    node.cb = nullptr; // Release closure resources eagerly.
    node.next = free_head_;
    free_head_ = slot;
}

std::uint32_t
EventQueue::allocBucket(Tick when)
{
    std::uint32_t index;
    if (bucket_free_head_ != kNil) {
        index = bucket_free_head_;
        bucket_free_head_ = buckets_[index].next_free;
    } else {
        buckets_.emplace_back();
        index = static_cast<std::uint32_t>(buckets_.size() - 1);
    }
    Bucket &bucket = buckets_[index];
    bucket.head = kNil;
    bucket.tail = kNil;
    bucket.next_free = kNil;
    tickInsert(when, index);
    return index;
}

void
EventQueue::releaseBucket(std::uint32_t index)
{
    buckets_[index].next_free = bucket_free_head_;
    bucket_free_head_ = index;
}

// ---- Tick -> bucket table -----------------------------------------------

std::uint64_t
EventQueue::hashTick(Tick when)
{
    std::uint64_t k = when;
    k *= 0x9E3779B97F4A7C15ull;
    k ^= k >> 29;
    return k;
}

std::uint32_t
EventQueue::tickLookup(Tick when) const
{
    if (ticks_.empty())
        return kNil;
    std::uint32_t i =
        static_cast<std::uint32_t>(hashTick(when)) & tick_mask_;
    for (;; i = (i + 1) & tick_mask_) {
        const TickSlot &slot = ticks_[i];
        if (slot.bucket == kNil)
            return kNil;
        if (slot.bucket != kTombstone && slot.when == when)
            return slot.bucket;
    }
}

void
EventQueue::tickInsert(Tick when, std::uint32_t bucket)
{
    if (ticks_.empty())
        tickRebuild(64);
    std::uint32_t i =
        static_cast<std::uint32_t>(hashTick(when)) & tick_mask_;
    while (ticks_[i].bucket != kNil &&
           ticks_[i].bucket != kTombstone)
        i = (i + 1) & tick_mask_;
    if (ticks_[i].bucket == kNil) {
        // Claiming a virgin slot shrinks the empty margin that
        // terminates probes; rebuild before chains degenerate.
        if ((tick_used_ + 1) * 4 > 3 * ticks_.size()) {
            tickRebuild(std::max<std::size_t>(64, 4 * heap_.size()));
            tickInsert(when, bucket);
            return;
        }
        ++tick_used_;
    }
    ticks_[i] = {when, bucket};
}

void
EventQueue::tickErase(Tick when)
{
    std::uint32_t i =
        static_cast<std::uint32_t>(hashTick(when)) & tick_mask_;
    for (;; i = (i + 1) & tick_mask_) {
        TickSlot &slot = ticks_[i];
        MACH_ASSERT(slot.bucket != kNil);
        if (slot.bucket != kTombstone && slot.when == when) {
            slot.bucket = kTombstone;
            return;
        }
    }
}

void
EventQueue::tickRebuild(std::size_t capacity)
{
    std::size_t size = 64;
    while (size < capacity)
        size <<= 1;
    ticks_.assign(size, TickSlot{});
    tick_mask_ = static_cast<std::uint32_t>(size - 1);
    tick_used_ = 0;
    for (const HeapItem &item : heap_) {
        std::uint32_t i =
            static_cast<std::uint32_t>(hashTick(item.when)) &
            tick_mask_;
        while (ticks_[i].bucket != kNil)
            i = (i + 1) & tick_mask_;
        ticks_[i] = {item.when, item.bucket};
        ++tick_used_;
    }
}

// ---- Scheduling ---------------------------------------------------------

EventId
EventQueue::enqueue(Tick when, std::uint32_t slot)
{
    MACH_ASSERT(slot <= kSlotMask);
    const std::uint64_t seq = (next_seq_++ << kSlotBits) | slot;
    slab_[slot].seq = seq;
    slab_[slot].next = kNil;

    const std::uint32_t existing = tickLookup(when);
    if (existing != kNil) {
        // The tick is already pending: FIFO append. Arrival order is
        // sequence order, so the chain preserves the (when, seq)
        // contract without touching the heap.
        Bucket &bucket = buckets_[existing];
        if (bucket.tail == kNil)
            bucket.head = slot;
        else
            slab_[bucket.tail].next = slot;
        bucket.tail = slot;
    } else {
        const std::uint32_t index = allocBucket(when);
        Bucket &bucket = buckets_[index];
        bucket.head = slot;
        bucket.tail = slot;
        heap_.push_back({when, index});
        siftUp(heap_.size() - 1);
    }
    ++live_;
    return EventId{when, seq, slot};
}

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    MACH_ASSERT(cb != nullptr);
    if (perturber_ != nullptr)
        when += perturber_->eventDelay(next_seq_);
    const std::uint32_t slot = allocNode();
    slab_[slot].cb = std::move(cb);
    return enqueue(when, slot);
}

EventId
EventQueue::scheduleRaw(Tick when, RawFn fn, void *ctx,
                        std::uint64_t token)
{
    MACH_ASSERT(fn != nullptr);
    if (perturber_ != nullptr)
        when += perturber_->eventDelay(next_seq_);
    const std::uint32_t slot = allocNode();
    Node &node = slab_[slot];
    node.raw_fn = fn;
    node.raw_ctx = ctx;
    node.raw_token = token;
    return enqueue(when, slot);
}

void
EventQueue::cancel(EventId id)
{
    if (!id.valid())
        return;
    if (id.slot >= slab_.size() || slab_[id.slot].seq != id.seq)
        return; // Already fired or cancelled; the slot moved on.
    // The node stays linked in its bucket chain (no back pointers to
    // unlink in O(1)); release its resources now and let the chain
    // sweep reclaim the slot when the tick drains.
    Node &node = slab_[id.slot];
    node.seq = kCancelledSeq;
    node.raw_fn = nullptr;
    node.raw_ctx = nullptr;
    node.raw_token = 0;
    node.cb = nullptr;
    MACH_ASSERT(live_ > 0);
    --live_;
    ++tombstones_;
    // A sleep/cancel-heavy phase (kicked idle naps, re-armed timeouts)
    // can flood the chains with tombstones whose ticks lie far in the
    // future, where the front sweep would never reach them. Compact in
    // bulk once they dominate; amortized O(1) per cancel.
    if (tombstones_ > 64 && tombstones_ > live_)
        compact();
}

// ---- Heap of distinct ticks ---------------------------------------------

void
EventQueue::siftUp(std::size_t i)
{
    HeapItem item = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (item.when >= heap_[parent].when)
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = item;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    HeapItem item = heap_[i];
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heap_[child + 1].when < heap_[child].when)
            ++child;
        if (heap_[child].when >= item.when)
            break;
        heap_[i] = heap_[child];
        i = child;
    }
    heap_[i] = item;
}

void
EventQueue::sweepFront()
{
    for (;;) {
        MACH_ASSERT(!heap_.empty());
        Bucket &bucket = buckets_[heap_.front().bucket];
        while (bucket.head != kNil &&
               slab_[bucket.head].seq == kCancelledSeq) {
            const std::uint32_t dead = bucket.head;
            bucket.head = slab_[dead].next;
            releaseNode(dead);
            MACH_ASSERT(tombstones_ > 0);
            --tombstones_;
        }
        if (bucket.head != kNil)
            return;
        // The tick drained to nothing but tombstones: retire it.
        tickErase(heap_.front().when);
        releaseBucket(heap_.front().bucket);
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }
}

std::uint32_t
EventQueue::takeFront()
{
    Bucket &bucket = buckets_[heap_.front().bucket];
    const std::uint32_t slot = bucket.head;
    bucket.head = slab_[slot].next;
    if (bucket.head == kNil) {
        tickErase(heap_.front().when);
        releaseBucket(heap_.front().bucket);
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }
    --live_;
    return slot;
}

void
EventQueue::compact()
{
    std::size_t kept = 0;
    for (const HeapItem &item : heap_) {
        Bucket &bucket = buckets_[item.bucket];
        // Relink the chain keeping only live nodes; order within the
        // chain (= sequence order) is preserved.
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
        std::uint32_t slot = bucket.head;
        while (slot != kNil) {
            const std::uint32_t next = slab_[slot].next;
            if (slab_[slot].seq == kCancelledSeq) {
                releaseNode(slot);
            } else {
                if (tail == kNil)
                    head = slot;
                else
                    slab_[tail].next = slot;
                slab_[slot].next = kNil;
                tail = slot;
            }
            slot = next;
        }
        if (head == kNil) {
            tickErase(item.when);
            releaseBucket(item.bucket);
            continue;
        }
        bucket.head = head;
        bucket.tail = tail;
        heap_[kept++] = item;
    }
    heap_.resize(kept);
    tombstones_ = 0;
    // Bottom-up heapify. The internal layout differs from the
    // incremental one, but buckets still pop in unique-tick order, so
    // observable behavior is unchanged.
    for (std::size_t i = heap_.size() / 2; i-- > 0;)
        siftDown(i);
}

// ---- Dispatch -----------------------------------------------------------

Tick
EventQueue::nextTime() const
{
    // Sweeping tombstones mutates only host-side bookkeeping, never
    // the logical queue contents; keep the observing API const.
    auto *self = const_cast<EventQueue *>(this);
    self->sweepFront();
    return heap_.front().when;
}

EventQueue::Callback
EventQueue::popFront(Tick *when)
{
    sweepFront();
    *when = heap_.front().when;
    const std::uint32_t slot = takeFront();
    Node &node = slab_[slot];
    MACH_ASSERT(node.cb != nullptr); // Raw events need fireFront().
    Callback cb = std::move(node.cb);
    releaseNode(slot);
    return cb;
}

Tick
EventQueue::fireFront()
{
    sweepFront();
    const Tick when = heap_.front().when;
    const std::uint32_t slot = takeFront();
    Node &node = slab_[slot];
    if (node.raw_fn != nullptr) {
        const RawFn fn = node.raw_fn;
        void *ctx = node.raw_ctx;
        const std::uint64_t token = node.raw_token;
        releaseNode(slot);
        fn(ctx, token);
    } else {
        Callback cb = std::move(node.cb);
        releaseNode(slot);
        cb();
    }
    return when;
}

std::uint64_t
EventQueue::fireTickBatch(Tick until, Tick *now, const bool *stop)
{
    if (live_ == 0)
        return 0;
    sweepFront();
    const Tick when = heap_.front().when;
    if (when > until)
        return 0;
    MACH_ASSERT(when >= *now);
    // Advance the clock before dispatch: event bodies read it as
    // their own fire time.
    *now = when;
    std::uint64_t dispatched = 0;
    for (;;) {
        const std::uint32_t slot = takeFront();
        Node &node = slab_[slot];
        if (node.raw_fn != nullptr) {
            const RawFn fn = node.raw_fn;
            void *ctx = node.raw_ctx;
            const std::uint64_t token = node.raw_token;
            releaseNode(slot);
            fn(ctx, token);
        } else {
            Callback cb = std::move(node.cb);
            releaseNode(slot);
            cb();
        }
        ++dispatched;
        if (*stop || live_ == 0)
            break;
        // A dispatched body may have scheduled or cancelled events at
        // this very tick; re-sweep so the front is live before
        // deciding whether the batch continues.
        sweepFront();
        if (heap_.front().when != when)
            break;
    }
    return dispatched;
}

std::size_t
EventQueue::freeNodeCount() const
{
    std::size_t count = 0;
    for (std::uint32_t slot = free_head_; slot != kNil;
         slot = slab_[slot].next)
        ++count;
    return count;
}

} // namespace mach::sim
