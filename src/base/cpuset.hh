/**
 * @file
 * Wide processor-set representation.
 *
 * The paper's machine stopped at 16 processors, so a 16-bit mask was
 * enough; the NUMA topology layer composes up to 8 nodes x 16 CPUs and
 * the scaling benches build 192-CPU machines, so every shoot-set /
 * in-use-set in the tree uses this fixed-width bitset instead. It is a
 * plain value type (no heap, trivially copyable) so per-pmap and
 * per-shootdown sets stay cheap, and iteration visits members in
 * ascending CPU id -- the same order as the `for (CpuId id = 0; ...)`
 * loops it replaces, which the determinism goldens pin.
 */

#ifndef MACH_BASE_CPUSET_HH
#define MACH_BASE_CPUSET_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "base/logging.hh"
#include "base/types.hh"

namespace mach
{

/** Fixed-width set of CPU ids, sized for the largest machine we build. */
class CpuSet
{
  public:
    /** Capacity in CPUs (1024 covers MachineConfig's ncpus ceiling). */
    static constexpr unsigned kMaxCpus = 1024;

    constexpr CpuSet() = default;

    // Population ops are bounds-checked: responder ids now span CPUs
    // plus devices (hw::MachineConfig::responderCount()), and an id at
    // or past kMaxCpus must fail loudly instead of scribbling past the
    // word array. test() of an out-of-range id is safely "not a
    // member" -- probing with a foreign id space is legal, growing the
    // set with one is not.
    constexpr void set(CpuId id)
    {
        MACH_ASSERT(id < kMaxCpus);
        word(id) |= bit(id);
    }
    constexpr void clear(CpuId id)
    {
        MACH_ASSERT(id < kMaxCpus);
        word(id) &= ~bit(id);
    }
    constexpr void assign(CpuId id, bool value)
    {
        value ? set(id) : clear(id);
    }
    constexpr bool test(CpuId id) const
    {
        return id < kMaxCpus && (words_[id / 64] & bit(id)) != 0;
    }

    constexpr void clearAll() { words_ = {}; }

    constexpr bool empty() const
    {
        for (std::uint64_t w : words_)
            if (w != 0)
                return false;
        return true;
    }

    constexpr unsigned count() const
    {
        unsigned n = 0;
        for (std::uint64_t w : words_)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    constexpr CpuSet &operator|=(const CpuSet &o)
    {
        for (std::size_t i = 0; i < words_.size(); ++i)
            words_[i] |= o.words_[i];
        return *this;
    }

    constexpr CpuSet &operator&=(const CpuSet &o)
    {
        for (std::size_t i = 0; i < words_.size(); ++i)
            words_[i] &= o.words_[i];
        return *this;
    }

    constexpr bool operator==(const CpuSet &o) const = default;

    /**
     * Visit members in ascending CPU id -- lockstep with the id-loop
     * order the shootdown protocol (and its digests) were built on.
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < words_.size(); ++i) {
            std::uint64_t w = words_[i];
            while (w != 0) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(w));
                fn(static_cast<CpuId>(i * 64 + b));
                w &= w - 1;
            }
        }
    }

    /** Lowest member, or kMaxCpus when empty. */
    CpuId first() const
    {
        for (std::size_t i = 0; i < words_.size(); ++i) {
            if (words_[i] != 0) {
                return static_cast<CpuId>(
                    i * 64 + std::countr_zero(words_[i]));
            }
        }
        return kMaxCpus;
    }

    /**
     * Human-readable "{0-3,8,12-15}" form with runs collapsed, for xpr
     * text and trace output on wide machines.
     */
    std::string format() const
    {
        std::string out = "{";
        bool first_range = true;
        unsigned id = 0;
        while (id < kMaxCpus) {
            if (!test(id)) {
                ++id;
                continue;
            }
            unsigned end = id;
            while (end + 1 < kMaxCpus && test(end + 1))
                ++end;
            if (!first_range)
                out += ',';
            first_range = false;
            out += std::to_string(id);
            if (end > id) {
                out += end == id + 1 ? "," : "-";
                out += std::to_string(end);
            }
            id = end + 1;
        }
        out += '}';
        return out;
    }

  private:
    constexpr std::uint64_t &word(CpuId id) { return words_[id / 64]; }
    static constexpr std::uint64_t bit(CpuId id)
    {
        return std::uint64_t{1} << (id % 64);
    }

    std::array<std::uint64_t, kMaxCpus / 64> words_{};
};

} // namespace mach

#endif // MACH_BASE_CPUSET_HH
